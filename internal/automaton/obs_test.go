package automaton

import (
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/machines"
	"repro/internal/obs"
	"repro/internal/query"
)

// TestPairDisabledMetricsZeroAlloc is the automaton twin of the query
// package's TestDisabledMetricsHotPathZeroAlloc: with metrics disabled
// the pair module holds no metrics handle and its steady-state hot path
// — point checks, range scans, assign/free churn — allocates nothing.
func TestPairDisabledMetricsZeroAlloc(t *testing.T) {
	if obs.Enabled() {
		t.Fatal("default registry unexpectedly enabled")
	}
	e := machines.Example().Expand()
	p := newPair(t, e)
	if p.met != nil {
		t.Error("PairModule built with metrics disabled holds a live metrics handle")
	}
	ops := len(e.Ops)
	warm := func() {
		for c := 0; c < 24; c++ {
			for op := 0; op < ops; op++ {
				if p.Check(op, c) {
					p.Assign(op, c, c*ops+op)
					p.Free(op, c, c*ops+op)
				}
				p.FirstFree(op, c, c+8)
				p.FirstFreeWithAlt(op%len(e.AltGroup), c, c+8)
			}
		}
	}
	warm() // grow the horizon, instance buckets and eviction scratch
	if allocs := testing.AllocsPerRun(100, warm); allocs != 0 {
		t.Errorf("steady-state pair-module ops allocate %.1f per pass with metrics disabled, want 0", allocs)
	}
}

// TestPairEnabledMetricsScopes pins that an enabled pair module records
// its calls and probe work under the shared query.<kind>.* namespace,
// with kind "fsa" — the same scopes the reduced-table backends publish.
func TestPairEnabledMetricsScopes(t *testing.T) {
	obs.Default().SetEnabled(true)
	defer func() {
		obs.Default().SetEnabled(false)
		obs.Default().Reset()
	}()
	obs.Default().Reset()
	e := machines.Example().Expand()
	p := newPair(t, e)
	if p.met == nil {
		t.Fatal("PairModule built with metrics enabled has no metrics handle")
	}
	for i := 0; i < 50; i++ {
		c := i % 16
		if p.Check(0, c) {
			p.Assign(0, c, i)
			p.Free(0, c, i)
		}
		p.FirstFree(0, c, c+4)
	}
	s := obs.Default().Snapshot()
	if got := s.Counter("query.fsa.check.calls"); got < 50 {
		t.Errorf("query.fsa.check.calls = %d, want >= 50", got)
	}
	for _, name := range []string{"assign", "free", "firstfree"} {
		if got := s.Counter("query.fsa." + name + ".calls"); got == 0 {
			t.Errorf("query.fsa.%s.calls = 0, want > 0", name)
		}
		if h := s.Histogram("query.fsa." + name + ".probe"); h == nil || h.Count == 0 {
			t.Errorf("query.fsa.%s.probe missing or empty", name)
		}
	}
}

// TestPairRangeMatchesNaive pins the range queries against the naive
// per-cycle reference on partially filled schedules, and pins the
// FirstFreeCycles accounting to the naive-equivalent probe count — the
// unit the auto-selector's cost model divides by.
func TestPairRangeMatchesNaive(t *testing.T) {
	for _, name := range []string{"example", "mips"} {
		m := machines.ByName(name)
		red := core.Reduce(m.Expand(), core.Objective{Kind: core.ResUses})
		if err := red.Verify(); err != nil {
			t.Fatal(err)
		}
		e := red.Reduced
		p := newPair(t, e)
		rng := rand.New(rand.NewSource(7))
		for i := 0; i < 40; i++ {
			op, c := rng.Intn(len(e.Ops)), rng.Intn(24)
			if p.Check(op, c) {
				p.Assign(op, c, i)
			}
		}
		for i := 0; i < 60; i++ {
			lo := rng.Intn(24)
			hi := lo + rng.Intn(16)
			op := rng.Intn(len(e.Ops))
			before := p.Counters().FirstFreeCycles
			gc, gok := p.FirstFree(op, lo, hi)
			wc, wok := query.FirstFreeNaive(p, op, lo, hi)
			if gc != wc || gok != wok {
				t.Fatalf("%s: FirstFree(%d, %d, %d) = (%d, %v), naive (%d, %v)",
					name, op, lo, hi, gc, gok, wc, wok)
			}
			if want := query.RangeProbes(lo, hi, gc, gok); p.Counters().FirstFreeCycles-before != want {
				t.Fatalf("%s: FirstFree(%d, %d, %d) charged %d naive-equivalent probes, want %d",
					name, op, lo, hi, p.Counters().FirstFreeCycles-before, want)
			}

			orig := rng.Intn(len(e.AltGroup))
			ga, gc2, gok2 := p.FirstFreeWithAlt(orig, lo, hi)
			wa, wc2, wok2 := query.FirstFreeWithAltNaive(p, orig, lo, hi)
			if ga != wa || gc2 != wc2 || gok2 != wok2 {
				t.Fatalf("%s: FirstFreeWithAlt(%d, %d, %d) = (%d, %d, %v), naive (%d, %d, %v)",
					name, orig, lo, hi, ga, gc2, gok2, wa, wc2, wok2)
			}
		}
	}
}

// TestPairResetInPlace pins the arena-reuse contract: Reset returns the
// module to the empty schedule without reallocating its grown state, so
// steady-state corpus scheduling through sched.Arena stays
// allocation-free on the FSA backend too.
func TestPairResetInPlace(t *testing.T) {
	e := machines.Example().Expand()
	p := newPair(t, e)
	fresh := newPair(t, e)
	pass := func() {
		for c := 0; c < 20; c++ {
			for op := 0; op < len(e.Ops); op++ {
				if p.Check(op, c) {
					p.Assign(op, c, c*len(e.Ops)+op)
				}
			}
		}
		p.Reset()
	}
	pass() // warm: grow horizon and buckets once
	if allocs := testing.AllocsPerRun(100, pass); allocs != 0 {
		t.Errorf("assign-churn + Reset allocates %.1f per pass after warmup, want 0", allocs)
	}
	if got := p.Counters(); *got != (query.Counters{}) {
		t.Errorf("counters not cleared by Reset: %+v", got)
	}
	for c := 0; c < 25; c++ {
		for op := 0; op < len(e.Ops); op++ {
			if got, want := p.Check(op, c), fresh.Check(op, c); got != want {
				t.Fatalf("after Reset, Check(%d, %d) = %v, fresh module says %v", op, c, got, want)
			}
		}
	}
}
