package automaton

import (
	"fmt"

	"repro/internal/query"
	"repro/internal/resmodel"
)

// PairModule supports the unrestricted scheduling model on top of
// finite-state automata, in the style the paper attributes to Bala &
// Rubin (Section 2): per-cycle automaton states are stored for the whole
// partial schedule, an operation may be inserted at any cycle, and an
// insertion's additional resource requirements are *propagated* through
// the stored states of adjacent cycles — the memory and computation
// overhead the paper contrasts with reduced reservation tables.
//
// Check(op, t) first consults the stored forward state at cycle t (a
// single table lookup, the automaton approach's strength), then verifies
// the insertion by propagating the op's residual commitments across the
// following span-1 cycles, re-issuing the operations scheduled there; a
// stored reverse-automaton state per cycle gives a second O(1) rejection
// test before propagation. Assign updates the stored states; Free
// recomputes them forward from the freed cycle until they converge.
//
// PairModule implements query.Module for linear schedules only (the
// paper notes that modulo schedules and assign&free are where automata
// struggle most; AssignFree here falls back to explicit overlap tests
// against the scheduled-instance list).
type PairModule struct {
	e   *resmodel.Expanded
	fwd *Automaton
	rev *Automaton

	// issuedAt[t] lists the instances issued in cycle t.
	issuedAt [][]pairInst
	// fIn[t] is the forward-automaton state at entry of cycle t (all
	// operations of cycles < t issued and advanced). len(fIn) >= horizon+1.
	fIn []int32
	// rIn[u] is the reverse-automaton state at entry of reverse cycle u.
	// Reverse cycle u corresponds to forward cycle horizon-1-u.
	rIn []int32
	// horizon is one past the last cycle that can hold commitments.
	horizon int

	inst map[int]pairPlaced
	ctr  query.Counters
}

type pairInst struct {
	id int
	op int
}

type pairPlaced struct {
	op    int
	cycle int
}

// NewPairModule builds the forward/reverse automaton pair for the
// description and an empty schedule.
func NewPairModule(e *resmodel.Expanded, lim Limit) (*PairModule, error) {
	fwd, err := BuildForward(e, lim)
	if err != nil {
		return nil, err
	}
	rev, err := BuildReverse(e, lim)
	if err != nil {
		return nil, err
	}
	p := &PairModule{e: e, fwd: fwd, rev: rev, inst: map[int]pairPlaced{}}
	p.growTo(32)
	return p, nil
}

func (p *PairModule) growTo(horizon int) {
	if horizon <= p.horizon {
		return
	}
	for len(p.issuedAt) < horizon {
		p.issuedAt = append(p.issuedAt, nil)
	}
	for len(p.fIn) < horizon+1 {
		p.fIn = append(p.fIn, 0)
	}
	old := p.horizon
	p.horizon = horizon
	// Extending the horizon leaves forward states valid (empty cycles map
	// to advance transitions of the last state).
	st := p.fIn[old]
	for t := old; t < horizon; t++ {
		st = p.stepCycle(st, t)
		p.fIn[t+1] = st
	}
	p.rebuildReverse()
}

// stepCycle issues every instance of cycle t in state st and advances; it
// panics if the stored schedule itself conflicts, which would be an
// internal-consistency bug.
func (p *PairModule) stepCycle(st int32, t int) int32 {
	w := Walker{a: p.fwd, cur: st}
	for _, in := range p.issuedAt[t] {
		if !w.Issue(in.op) {
			panic("automaton: stored schedule became inconsistent")
		}
	}
	w.Advance()
	return w.cur
}

// rebuildReverse recomputes every reverse-automaton state. Operations are
// processed in reverse time: an op issued at forward cycle t with span s
// occupies reverse cycles starting at horizon-(t+s).
func (p *PairModule) rebuildReverse() {
	for len(p.rIn) < p.horizon+1 {
		p.rIn = append(p.rIn, 0)
	}
	// Bucket ops by reverse issue cycle.
	byRev := make([][]int, p.horizon+1)
	for t, ins := range p.issuedAt {
		for _, in := range ins {
			s := p.e.Ops[in.op].Table.Span()
			rt := p.horizon - (t + s)
			if rt < 0 {
				rt = 0
			}
			byRev[rt] = append(byRev[rt], in.op)
		}
	}
	w := p.rev.Walk()
	for u := 0; u <= p.horizon; u++ {
		p.rIn[u] = w.State()
		if u == p.horizon {
			break
		}
		for _, op := range byRev[u] {
			if !w.Issue(op) {
				panic("automaton: reverse schedule inconsistent")
			}
		}
		w.Advance()
	}
}

// span returns the reservation-table span of op.
func (p *PairModule) span(op int) int { return p.e.Ops[op].Table.Span() }

// Schedulable implements query.Module (linear tables always succeed).
func (p *PairModule) Schedulable(op int) bool { return true }

// Check implements query.Module.
func (p *PairModule) Check(op, cycle int) bool {
	p.ctr.CheckCalls++
	return p.check(op, cycle)
}

func (p *PairModule) check(op, cycle int) bool {
	if cycle < 0 {
		panic(fmt.Sprintf("automaton: negative cycle %d", cycle))
	}
	s := p.span(op)
	p.growTo(cycle + s + 1)

	// Fast rejection #1: forward state at entry of the cycle plus this
	// cycle's own ops (covers all operations issued at cycles <= cycle).
	w := Walker{a: p.fwd, cur: p.fIn[cycle]}
	p.ctr.CheckWork++
	for _, in := range p.issuedAt[cycle] {
		if !w.Issue(in.op) {
			panic("automaton: stored schedule inconsistent")
		}
	}
	if !w.CanIssue(op) {
		return false
	}

	// Fast rejection #2: reverse state at the op's reverse issue cycle
	// (covers operations whose tables extend past this op's completion).
	rt := p.horizon - (cycle + s)
	if rt >= 0 && rt <= p.horizon {
		p.ctr.CheckWork++
		rw := Walker{a: p.rev, cur: p.rIn[rt]}
		if !rw.CanIssue(op) {
			return false
		}
	}

	// Exact verification: propagate the inserted op's residual through
	// the next span-1 cycles, re-issuing the operations stored there (the
	// state-update overhead of supporting unrestricted scheduling).
	if !w.Issue(op) {
		return false
	}
	w.Advance()
	st := w.cur
	for u := cycle + 1; u < cycle+s; u++ {
		p.ctr.CheckWork++
		ww := Walker{a: p.fwd, cur: st}
		for _, in := range p.issuedAt[u] {
			if !ww.Issue(in.op) {
				return false // an already-scheduled op would now conflict
			}
		}
		ww.Advance()
		st = ww.cur
	}
	return true
}

// Assign implements query.Module: store the instance and propagate the
// state updates through both automata.
func (p *PairModule) Assign(op, cycle, id int) {
	p.ctr.AssignCalls++
	s := p.span(op)
	p.growTo(cycle + s + 1)
	p.issuedAt[cycle] = append(p.issuedAt[cycle], pairInst{id: id, op: op})
	p.inst[id] = pairPlaced{op: op, cycle: cycle}
	// Recompute forward states from the insertion until convergence.
	st := p.fIn[cycle]
	for t := cycle; t < p.horizon; t++ {
		p.ctr.AssignWork++
		st = p.stepCycle(st, t)
		if st == p.fIn[t+1] && t >= cycle+s {
			break
		}
		p.fIn[t+1] = st
	}
	p.rebuildReverse()
	p.ctr.AssignWork += int64(p.horizon) // reverse state storage update
}

// Free implements query.Module.
func (p *PairModule) Free(op, cycle, id int) {
	p.ctr.FreeCalls++
	ins := p.issuedAt[cycle]
	for i, in := range ins {
		if in.id == id {
			p.issuedAt[cycle] = append(ins[:i:i], ins[i+1:]...)
			break
		}
	}
	delete(p.inst, id)
	st := p.fIn[cycle]
	for t := cycle; t < p.horizon; t++ {
		p.ctr.FreeWork++
		st = p.stepCycle(st, t)
		if st == p.fIn[t+1] {
			break
		}
		p.fIn[t+1] = st
	}
	p.rebuildReverse()
	p.ctr.FreeWork += int64(p.horizon)
}

// AssignFree implements query.Module. Finding the conflicting instances
// is not a state-machine operation — the paper notes that backtracking
// "appears to be more difficult" for automata — so it falls back to
// explicit reservation-table overlap tests against every scheduled
// instance.
func (p *PairModule) AssignFree(op, cycle, id int) []int {
	p.ctr.AssignFreeCalls++
	var evicted []int
	for otherID, pl := range p.inst {
		p.ctr.AssignFreeWork++
		if otherID == id {
			continue
		}
		if tablesOverlap(p.e.Ops[op].Table, cycle, p.e.Ops[pl.op].Table, pl.cycle) {
			evicted = append(evicted, otherID)
		}
	}
	for _, ev := range evicted {
		pl := p.inst[ev]
		p.Free(pl.op, pl.cycle, ev)
		p.ctr.FreeCalls-- // charged to this AssignFree, not to Free
	}
	p.Assign(op, cycle, id)
	p.ctr.AssignCalls--
	p.ctr.Unscheduled += int64(len(evicted))
	if len(evicted) > 0 {
		p.ctr.AssignFreeEvicting++
	}
	return evicted
}

func tablesOverlap(a resmodel.Table, ta int, b resmodel.Table, tb int) bool {
	for _, ua := range a.Uses {
		for _, ub := range b.Uses {
			if ua.Resource == ub.Resource && ta+ua.Cycle == tb+ub.Cycle {
				return true
			}
		}
	}
	return false
}

// CheckWithAlt implements query.Module.
func (p *PairModule) CheckWithAlt(origOp, cycle int) (int, bool) {
	p.ctr.CheckWithAltCalls++
	for _, op := range p.e.AltGroup[origOp] {
		if p.Check(op, cycle) {
			return op, true
		}
	}
	return -1, false
}

// Counters implements query.Module.
func (p *PairModule) Counters() *query.Counters { return &p.ctr }

// Reset implements query.Module.
func (p *PairModule) Reset() {
	p.issuedAt = nil
	p.fIn = nil
	p.rIn = nil
	p.horizon = 0
	p.inst = map[int]pairPlaced{}
	p.ctr.Reset()
	p.growTo(32)
}

// AltGroupOf exposes alternative groups for schedulers.
func (p *PairModule) AltGroupOf(origOp int) []int { return p.e.AltGroup[origOp] }

// StatesStored reports the per-cycle automaton states currently kept —
// the memory overhead of the unrestricted model ("two states per
// operation must be stored"; here two states per schedule cycle).
func (p *PairModule) StatesStored() int { return len(p.fIn) + len(p.rIn) }

var _ query.Module = (*PairModule)(nil)

// StateBytes implements query.MemoryFootprint: the per-cycle forward and
// reverse automaton states ("two states per operation must be stored" —
// here per cycle), 4 bytes each, plus the issue lists.
func (p *PairModule) StateBytes() int {
	n := 4 * (len(p.fIn) + len(p.rIn))
	for _, ins := range p.issuedAt {
		n += 8 * len(ins)
	}
	return n
}
