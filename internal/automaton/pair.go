package automaton

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/query"
	"repro/internal/resmodel"
)

// PairModule supports the unrestricted scheduling model on top of
// finite-state automata, in the style the paper attributes to Bala &
// Rubin (Section 2): per-cycle automaton states are stored for the whole
// partial schedule, an operation may be inserted at any cycle, and an
// insertion's additional resource requirements are *propagated* through
// the stored states of adjacent cycles — the memory and computation
// overhead the paper contrasts with reduced reservation tables.
//
// Check(op, t) first consults the stored forward state at cycle t (a
// single table lookup, the automaton approach's strength), then verifies
// the insertion by propagating the op's residual commitments across the
// following span-1 cycles, re-issuing the operations scheduled there; a
// stored reverse-automaton state per completion anchor gives a second
// O(1) rejection test before propagation. Assign updates the stored
// states; Free recomputes them forward from the freed cycle until they
// converge. Both repair the reverse states incrementally from the
// changed anchor downward instead of rebuilding the whole reverse walk,
// so the work they charge is the states actually recomputed, not
// O(horizon).
//
// PairModule implements query.Module and query.RangeQuerier for linear
// schedules only (the paper notes that modulo schedules and assign&free
// are where automata struggle most; AssignFree here falls back to
// explicit overlap tests against the scheduled-instance list). It does
// not support dangling seeding: a dangling window would need up to
// O(span²) extra interned states, which is exactly the blow-up the
// reduced representations avoid — query.Select therefore excludes the
// FSA backend for machines scheduled with dangling usages.
type PairModule struct {
	e   *resmodel.Expanded
	fwd *Automaton
	rev *Automaton

	// issuedAt[t] lists the instances issued in cycle t.
	issuedAt [][]pairInst
	// anchored[a] lists the instances whose reservation table ends at
	// forward cycle a (a = issue cycle + span): the reverse automaton
	// issues an operation at its completion anchor, so anchor-indexed
	// bookkeeping keeps every stored reverse state meaningful no matter
	// how far the horizon later grows.
	anchored [][]pairInst
	// fIn[t] is the forward-automaton state at entry of cycle t (all
	// operations of cycles < t issued and advanced). len(fIn) >= horizon+1.
	fIn []int32
	// rIn[a] is the reverse-automaton state after issuing and advancing
	// every instance anchored strictly above a. rIn[horizon] is the empty
	// state, and because the empty state is a fixed point of the advance
	// transition, extending the horizon merely appends empty states —
	// existing entries stay valid, which is what makes incremental repair
	// (instead of a full reverse rebuild) sound. Check's fast rejection
	// for (op, cycle) reads rIn[cycle+span(op)] with one lookup.
	rIn []int32
	// horizon is one past the last cycle that can hold commitments.
	horizon int

	inst         map[int]pairPlaced
	evictScratch []int
	ctr          query.Counters
	met          *query.ModuleObs // nil while metrics are disabled
}

type pairInst struct {
	id int
	op int
}

type pairPlaced struct {
	op    int
	cycle int
}

// pairKey identifies a cached forward/reverse automaton pair: automata
// depend only on the expanded description (pointer identity, like the
// query package's compile cache) and the state budget they were built
// under.
type pairKey struct {
	e         *resmodel.Expanded
	maxStates int
}

// pairAutomata caches a build outcome — including failures: a
// description that exceeds the state budget (the Cydra 5 does, by
// orders of magnitude) costs real time to re-discover, and the
// auto-selection calibrator probes every machine it sees.
type pairAutomata struct {
	fwd, rev *Automaton
	err      error
}

var (
	pairCacheMu sync.Mutex
	pairCache   = map[pairKey]*pairAutomata{}
)

const pairCacheCap = 64

// automataFor returns the shared forward/reverse automaton pair for e
// under lim, building on first use. Automata are immutable after
// construction (modules keep all mutable state in per-cycle walkers),
// so sharing across modules and goroutines is safe.
func automataFor(e *resmodel.Expanded, lim Limit) (*pairAutomata, error) {
	key := pairKey{e: e, maxStates: lim.MaxStates}
	pairCacheMu.Lock()
	if got, ok := pairCache[key]; ok {
		pairCacheMu.Unlock()
		return got, got.err
	}
	pairCacheMu.Unlock()

	pa := &pairAutomata{}
	pa.fwd, pa.err = BuildForward(e, lim)
	if pa.err == nil {
		pa.rev, pa.err = BuildReverse(e, lim)
	}

	pairCacheMu.Lock()
	if got, ok := pairCache[key]; ok { // raced with another builder
		pairCacheMu.Unlock()
		return got, got.err
	}
	if len(pairCache) >= pairCacheCap {
		clear(pairCache)
	}
	pairCache[key] = pa
	pairCacheMu.Unlock()
	return pa, pa.err
}

// NewPairModule builds (or fetches from the process-wide cache) the
// forward/reverse automaton pair for the description and returns an
// empty schedule over it.
func NewPairModule(e *resmodel.Expanded, lim Limit) (*PairModule, error) {
	pa, err := automataFor(e, lim)
	if err != nil {
		return nil, err
	}
	p := &PairModule{
		e:    e,
		fwd:  pa.fwd,
		rev:  pa.rev,
		inst: map[int]pairPlaced{},
		met:  query.NewModuleObs("fsa"),
	}
	p.growTo(32)
	return p, nil
}

func (p *PairModule) growTo(horizon int) {
	if horizon <= p.horizon {
		return
	}
	for len(p.issuedAt) < horizon {
		p.issuedAt = append(p.issuedAt, nil)
	}
	for len(p.anchored) < horizon+1 {
		p.anchored = append(p.anchored, nil)
	}
	for len(p.fIn) < horizon+1 {
		p.fIn = append(p.fIn, 0)
	}
	old := p.horizon
	p.horizon = horizon
	// Extending the horizon leaves forward states valid (empty cycles map
	// to advance transitions of the last state).
	st := p.fIn[old]
	for t := old; t < horizon; t++ {
		st = p.stepCycle(st, t)
		p.fIn[t+1] = st
	}
	// Reverse states above the old horizon see no anchors above them, so
	// they are all the empty state; everything below is untouched.
	for len(p.rIn) < horizon+1 {
		p.rIn = append(p.rIn, 0)
	}
}

// stepCycle issues every instance of cycle t in state st and advances; it
// panics if the stored schedule itself conflicts, which would be an
// internal-consistency bug.
func (p *PairModule) stepCycle(st int32, t int) int32 {
	w := Walker{a: p.fwd, cur: st}
	for _, in := range p.issuedAt[t] {
		if !w.Issue(in.op) {
			panic("automaton: stored schedule became inconsistent")
		}
	}
	w.Advance()
	return w.cur
}

// repairReverse recomputes the stored reverse states below anchor from,
// after the instance set anchored there changed. rIn[a-1] is a pure
// function of rIn[a] and anchored[a], so the walk proceeds downward and
// stops at the first anchor whose recomputed state matches the stored
// one — below that point nothing can differ. The return value is the
// number of states recomputed: the honest incremental cost charged to
// AssignWork/FreeWork in place of the old full-rebuild O(horizon).
func (p *PairModule) repairReverse(from int) int64 {
	var n int64
	w := Walker{a: p.rev}
	for a := from; a >= 1; a-- {
		w.cur = p.rIn[a]
		for _, in := range p.anchored[a] {
			if !w.Issue(in.op) {
				panic("automaton: reverse schedule inconsistent")
			}
		}
		w.Advance()
		n++
		if w.cur == p.rIn[a-1] {
			break
		}
		p.rIn[a-1] = w.cur
	}
	return n
}

// span returns the reservation-table span of op.
func (p *PairModule) span(op int) int { return p.e.Ops[op].Table.Span() }

// Schedulable implements query.Module (linear tables always succeed).
func (p *PairModule) Schedulable(op int) bool { return true }

// Check implements query.Module.
func (p *PairModule) Check(op, cycle int) bool {
	p.ctr.CheckCalls++
	ok, work := p.probe(op, cycle)
	p.ctr.CheckWork += work
	p.met.OnCheck(work)
	return ok
}

// probe is the uncounted feasibility core shared by Check and the range
// queries; it returns the answer and the work units (state transitions)
// spent, so each caller charges its own counter.
func (p *PairModule) probe(op, cycle int) (bool, int64) {
	if cycle < 0 {
		panic(fmt.Sprintf("automaton: negative cycle %d", cycle))
	}
	s := p.span(op)
	p.growTo(cycle + s + 1)

	// Fast rejection #1: forward state at entry of the cycle plus this
	// cycle's own ops (covers all operations issued at cycles <= cycle).
	work := int64(1)
	w := Walker{a: p.fwd, cur: p.fIn[cycle]}
	for _, in := range p.issuedAt[cycle] {
		if !w.Issue(in.op) {
			panic("automaton: stored schedule inconsistent")
		}
	}
	if !w.CanIssue(op) {
		return false, work
	}

	// Fast rejection #2: reverse state at the op's completion anchor
	// (covers operations whose tables extend past this op's completion).
	work++
	rw := Walker{a: p.rev, cur: p.rIn[cycle+s]}
	if !rw.CanIssue(op) {
		return false, work
	}

	// Exact verification: propagate the inserted op's residual through
	// the next span-1 cycles, re-issuing the operations stored there (the
	// state-update overhead of supporting unrestricted scheduling).
	if !w.Issue(op) {
		return false, work
	}
	w.Advance()
	st := w.cur
	for u := cycle + 1; u < cycle+s; u++ {
		work++
		ww := Walker{a: p.fwd, cur: st}
		for _, in := range p.issuedAt[u] {
			if !ww.Issue(in.op) {
				return false, work // an already-scheduled op would now conflict
			}
		}
		ww.Advance()
		st = ww.cur
	}
	return true, work
}

// Assign implements query.Module: store the instance and propagate the
// state updates through both automata.
func (p *PairModule) Assign(op, cycle, id int) {
	p.ctr.AssignCalls++
	w0 := p.ctr.AssignWork
	p.assign(op, cycle, id)
	p.met.OnAssign(p.ctr.AssignWork - w0)
}

func (p *PairModule) assign(op, cycle, id int) {
	s := p.span(op)
	p.growTo(cycle + s + 1)
	p.issuedAt[cycle] = append(p.issuedAt[cycle], pairInst{id: id, op: op})
	p.anchored[cycle+s] = append(p.anchored[cycle+s], pairInst{id: id, op: op})
	p.inst[id] = pairPlaced{op: op, cycle: cycle}
	// Recompute forward states from the insertion until convergence.
	st := p.fIn[cycle]
	for t := cycle; t < p.horizon; t++ {
		p.ctr.AssignWork++
		st = p.stepCycle(st, t)
		if st == p.fIn[t+1] && t >= cycle+s {
			break
		}
		p.fIn[t+1] = st
	}
	p.ctr.AssignWork += p.repairReverse(cycle + s)
}

// Free implements query.Module.
func (p *PairModule) Free(op, cycle, id int) {
	p.ctr.FreeCalls++
	w0 := p.ctr.FreeWork
	p.free(op, cycle, id)
	p.met.OnFree(p.ctr.FreeWork - w0)
}

func (p *PairModule) free(op, cycle, id int) {
	p.issuedAt[cycle] = removeInst(p.issuedAt[cycle], id)
	if a := cycle + p.span(op); a < len(p.anchored) {
		p.anchored[a] = removeInst(p.anchored[a], id)
	}
	delete(p.inst, id)
	st := p.fIn[cycle]
	for t := cycle; t < p.horizon; t++ {
		p.ctr.FreeWork++
		st = p.stepCycle(st, t)
		if st == p.fIn[t+1] {
			break
		}
		p.fIn[t+1] = st
	}
	p.ctr.FreeWork += p.repairReverse(cycle + p.span(op))
}

// removeInst deletes instance id in place (order-preserving), keeping
// the slice's capacity for reuse instead of reallocating.
func removeInst(ins []pairInst, id int) []pairInst {
	for i, in := range ins {
		if in.id == id {
			return append(ins[:i], ins[i+1:]...)
		}
	}
	return ins
}

// AssignFree implements query.Module. Finding the conflicting instances
// is not a state-machine operation — the paper notes that backtracking
// "appears to be more difficult" for automata — so it falls back to
// explicit reservation-table overlap tests against every scheduled
// instance. All eviction work (the frees and the re-insert) is charged
// to AssignFreeWork, matching the reduced backends.
func (p *PairModule) AssignFree(op, cycle, id int) []int {
	p.ctr.AssignFreeCalls++
	w0 := p.ctr.AssignFreeWork
	evicted := p.evictScratch[:0]
	for otherID, pl := range p.inst {
		p.ctr.AssignFreeWork++
		if otherID == id {
			continue
		}
		if tablesOverlap(p.e.Ops[op].Table, cycle, p.e.Ops[pl.op].Table, pl.cycle) {
			evicted = append(evicted, otherID)
		}
	}
	// Map iteration order is not deterministic; the module's outputs must
	// be (they feed byte-identical serving responses), so fix the order.
	sort.Ints(evicted)
	wa, wf := p.ctr.AssignWork, p.ctr.FreeWork
	for _, ev := range evicted {
		pl := p.inst[ev]
		p.free(pl.op, pl.cycle, ev)
	}
	p.assign(op, cycle, id)
	p.ctr.AssignFreeWork += (p.ctr.AssignWork - wa) + (p.ctr.FreeWork - wf)
	p.ctr.AssignWork, p.ctr.FreeWork = wa, wf
	p.evictScratch = evicted
	p.ctr.Unscheduled += int64(len(evicted))
	if len(evicted) > 0 {
		p.ctr.AssignFreeEvicting++
	}
	p.met.OnAssignFree(p.ctr.AssignFreeWork-w0, len(evicted))
	return evicted
}

func tablesOverlap(a resmodel.Table, ta int, b resmodel.Table, tb int) bool {
	for _, ua := range a.Uses {
		for _, ub := range b.Uses {
			if ua.Resource == ub.Resource && ta+ua.Cycle == tb+ub.Cycle {
				return true
			}
		}
	}
	return false
}

// CheckWithAlt implements query.Module.
func (p *PairModule) CheckWithAlt(origOp, cycle int) (int, bool) {
	p.ctr.CheckWithAltCalls++
	p.met.OnCheckWithAlt()
	for _, op := range p.e.AltGroup[origOp] {
		if p.Check(op, cycle) {
			return op, true
		}
	}
	return -1, false
}

// FirstFree implements query.RangeQuerier with the naive scan: the FSA's
// per-cycle probe is already a handful of table lookups, so there is no
// summary structure to skip ahead with. FirstFreeCycles is charged with
// query.RangeProbes — the naive-equivalent candidate count — so the
// paper's work metric stays representation-invariant.
func (p *PairModule) FirstFree(op, lo, hi int) (int, bool) {
	p.ctr.FirstFreeCalls++
	w0 := p.ctr.FirstFreeWork
	cycle, ok := p.firstFree(op, lo, hi)
	p.ctr.FirstFreeCycles += query.RangeProbes(lo, hi, cycle, ok)
	p.met.OnFirstFree(p.ctr.FirstFreeWork-w0, 0)
	return cycle, ok
}

func (p *PairModule) firstFree(op, lo, hi int) (int, bool) {
	if lo < 0 {
		panic(fmt.Sprintf("automaton: FirstFree with negative start %d on a linear schedule", lo))
	}
	for t := lo; t <= hi; t++ {
		ok, work := p.probe(op, t)
		p.ctr.FirstFreeWork += work
		if ok {
			return t, true
		}
	}
	return 0, false
}

// FirstFreeWithAlt implements query.RangeQuerier. The scan order is the
// naive one — cycles outermost, the alternative group innermost — so the
// (cycle, alternative) tie-break is identical to CheckWithAlt-per-cycle
// and to the reduced backends, keeping schedules byte-identical.
func (p *PairModule) FirstFreeWithAlt(origOp, lo, hi int) (int, int, bool) {
	if origOp < 0 || origOp >= len(p.e.AltGroup) {
		panic(fmt.Sprintf("automaton: FirstFreeWithAlt: original op index %d out of range", origOp))
	}
	if lo < 0 {
		panic(fmt.Sprintf("automaton: FirstFreeWithAlt with negative start %d on a linear schedule", lo))
	}
	p.ctr.FirstFreeWithAltCalls++
	p.met.OnFirstFreeWithAlt()
	group := p.e.AltGroup[origOp]
	w0 := p.ctr.FirstFreeWork
	op, cycle, altIdx, ok := p.firstFreeAlt(group, lo, hi)
	p.ctr.FirstFreeCycles += query.RangeProbesAlt(lo, hi, cycle, altIdx, len(group), ok)
	p.met.OnFirstFree(p.ctr.FirstFreeWork-w0, 0)
	return op, cycle, ok
}

func (p *PairModule) firstFreeAlt(group []int, lo, hi int) (op, cycle, altIdx int, found bool) {
	for t := lo; t <= hi; t++ {
		for ai, cand := range group {
			ok, work := p.probe(cand, t)
			p.ctr.FirstFreeWork += work
			if ok {
				return cand, t, ai, true
			}
		}
	}
	return -1, 0, 0, false
}

// Counters implements query.Module.
func (p *PairModule) Counters() *query.Counters { return &p.ctr }

// Reset implements query.Module in place: the automata are immutable and
// shared, and every per-schedule slice keeps its capacity, so arena
// reuse across loops allocates nothing in steady state.
func (p *PairModule) Reset() {
	for t := range p.issuedAt {
		p.issuedAt[t] = p.issuedAt[t][:0]
	}
	for a := range p.anchored {
		p.anchored[a] = p.anchored[a][:0]
	}
	for i := range p.fIn {
		p.fIn[i] = 0
	}
	for i := range p.rIn {
		p.rIn[i] = 0
	}
	clear(p.inst)
	p.ctr.Reset()
	if p.horizon < 32 {
		p.growTo(32)
	}
}

// AltGroupOf exposes alternative groups for schedulers.
func (p *PairModule) AltGroupOf(origOp int) []int { return p.e.AltGroup[origOp] }

// StatesStored reports the per-cycle automaton states currently kept —
// the memory overhead of the unrestricted model ("two states per
// operation must be stored"; here two states per schedule cycle).
func (p *PairModule) StatesStored() int { return len(p.fIn) + len(p.rIn) }

// AutomatonStates reports the total interned states of the underlying
// forward and reverse automata — the build-time footprint the selection
// policy bounds before admitting the FSA backend.
func (p *PairModule) AutomatonStates() int { return p.fwd.NumStates() + p.rev.NumStates() }

var (
	_ query.Module       = (*PairModule)(nil)
	_ query.RangeQuerier = (*PairModule)(nil)
	_ query.AltGrouper   = (*PairModule)(nil)
)

// StateBytes implements query.MemoryFootprint: the per-cycle forward and
// reverse automaton states ("two states per operation must be stored" —
// here per cycle), 4 bytes each, plus the issue and anchor lists.
func (p *PairModule) StateBytes() int {
	n := 4 * (len(p.fIn) + len(p.rIn))
	for _, ins := range p.issuedAt {
		n += 8 * len(ins)
	}
	for _, ins := range p.anchored {
		n += 8 * len(ins)
	}
	return n
}
