// Package forbidden implements Step 1 of the reduction of Eichenberger &
// Davidson (PLDI 1996): computing the forbidden-latency matrix of a machine
// description, and partitioning operations into operation classes à la
// Proebsting & Fraser.
//
// For operations X and Y, the forbidden-latency set F[X][Y] is the set of
// initiation intervals j such that scheduling X exactly j cycles after Y
// produces a resource contention (Equation 1 of the paper):
//
//	F[X][Y] = { cy - cx | some resource i, cx in X_i, cy in Y_i }
//
// where X_i is the usage set of operation X on resource i. Two properties
// follow: 0 is in F[X][X] whenever X uses any resource, and
// f in F[X][Y] iff -f in F[Y][X].
package forbidden

import (
	"fmt"

	"repro/internal/bitset"
	"repro/internal/parallel"
	"repro/internal/resmodel"
)

// Matrix is the forbidden-latency matrix of an expanded machine
// description. Element (x, y) is the set F[x][y] described above, over the
// latency range [-(L-1), L-1] where L is the machine's maximum
// reservation-table span.
type Matrix struct {
	NumOps int
	// Span is the maximum reservation-table span L; every forbidden latency
	// has absolute value < L.
	Span int
	sets [][]*bitset.Signed
}

// Compute builds the forbidden-latency matrix of an expanded machine by
// overlapping every pair of reservation tables (Step 1 of the paper).
func Compute(e *resmodel.Expanded) *Matrix {
	return ComputeParallel(e, 1)
}

// ComputeParallel is Compute fanned across a bounded worker pool: row x
// of the matrix depends only on operation x's usages and the (read-only)
// per-resource user lists, so rows are computed independently and each
// worker writes only its own rows. The result is identical to Compute at
// every worker count; workers <= 1 is the serial reference.
func ComputeParallel(e *resmodel.Expanded, workers int) *Matrix {
	n := len(e.Ops)
	span := e.MaxSpan()
	if span == 0 {
		span = 1 // degenerate machine with no usages at all
	}
	m := &Matrix{NumOps: n, Span: span}
	m.sets = make([][]*bitset.Signed, n)
	// usersOf[r] lists every (op, cycle) usage of resource r.
	type use struct{ op, cycle int }
	usersOf := make([][]use, len(e.Resources))
	for oi, o := range e.Ops {
		for _, u := range o.Table.Uses {
			usersOf[u.Resource] = append(usersOf[u.Resource], use{oi, u.Cycle})
		}
	}
	parallel.ForEach(n, workers, func(x int) {
		row := make([]*bitset.Signed, n)
		for y := 0; y < n; y++ {
			row[y] = bitset.NewSigned(-(span - 1), span-1)
		}
		for _, a := range e.Ops[x].Table.Uses {
			for _, b := range usersOf[a.Resource] {
				// Scheduling x at time t+(b.cycle-a.Cycle) and b.op at time
				// t makes both use this resource simultaneously.
				row[b.op].Add(b.cycle - a.Cycle)
			}
		}
		m.sets[x] = row
	})
	return m
}

// Set returns the forbidden-latency set F[x][y]. The returned set is shared
// with the matrix; callers must not modify it.
func (m *Matrix) Set(x, y int) *bitset.Signed { return m.sets[x][y] }

// Forbidden reports whether scheduling x exactly f cycles after y causes a
// resource contention.
func (m *Matrix) Forbidden(x, y, f int) bool {
	return m.sets[x][y].Contains(f)
}

// NonnegCount returns the total number of non-negative forbidden latencies
// over all ordered operation pairs — the count the paper reports in its
// table captions ("10223 forbidden latencies").
func (m *Matrix) NonnegCount() int {
	n := 0
	for x := 0; x < m.NumOps; x++ {
		for y := 0; y < m.NumOps; y++ {
			m.sets[x][y].ForEach(func(f int) bool {
				if f >= 0 {
					n++
				}
				return true
			})
		}
	}
	return n
}

// MaxLatency returns the largest forbidden latency (the paper's "all < 41"
// bound is MaxLatency+1), or -1 if the matrix is entirely empty.
func (m *Matrix) MaxLatency() int {
	max := -1
	for x := 0; x < m.NumOps; x++ {
		for y := 0; y < m.NumOps; y++ {
			s := m.sets[x][y]
			s.ForEach(func(f int) bool {
				if f > max {
					max = f
				}
				return true
			})
		}
	}
	return max
}

// Equal reports whether two matrices encode exactly the same scheduling
// constraints. This is the paper's correctness criterion for a reduced
// machine description.
func (m *Matrix) Equal(o *Matrix) bool {
	if m.NumOps != o.NumOps {
		return false
	}
	for x := 0; x < m.NumOps; x++ {
		for y := 0; y < m.NumOps; y++ {
			if !m.sets[x][y].Equal(o.sets[x][y]) {
				return false
			}
		}
	}
	return true
}

// Diff returns a human-readable description of the first difference between
// two matrices, or "" if they are equal. Op names are taken from the given
// expanded machine when non-nil.
func (m *Matrix) Diff(o *Matrix, e *resmodel.Expanded) string {
	name := func(i int) string {
		if e != nil && i < len(e.Ops) {
			return e.Ops[i].Name
		}
		return fmt.Sprintf("op%d", i)
	}
	if m.NumOps != o.NumOps {
		return fmt.Sprintf("operation count differs: %d vs %d", m.NumOps, o.NumOps)
	}
	for x := 0; x < m.NumOps; x++ {
		for y := 0; y < m.NumOps; y++ {
			if !m.sets[x][y].Equal(o.sets[x][y]) {
				return fmt.Sprintf("F[%s][%s] differs: %s vs %s",
					name(x), name(y), m.sets[x][y], o.sets[x][y])
			}
		}
	}
	return ""
}

// SelfOnly reports whether operation x's only forbidden latency is the
// trivial self-contention 0 in F[x][x] — the Rule 4 case of Algorithm 1.
func (m *Matrix) SelfOnly(x int) bool {
	for y := 0; y < m.NumOps; y++ {
		s := m.sets[x][y]
		if y == x {
			if s.Len() != 1 || !s.Contains(0) {
				return false
			}
			continue
		}
		if !s.Empty() {
			return false
		}
	}
	return true
}

// UsesResources reports whether operation x has any forbidden latency at
// all, which (for a valid machine) holds iff it uses at least one resource.
func (m *Matrix) UsesResources(x int) bool {
	return !m.sets[x][x].Empty()
}
