package forbidden

import (
	"repro/internal/bitset"
	"repro/internal/resmodel"
)

// Classes is a partition of a machine's (expanded) operations into
// operation classes: X and Y belong to the same class iff F[X][Z] == F[Y][Z]
// and F[Z][X] == F[Z][Y] for every operation Z (Proebsting & Fraser's
// criterion, as adopted in Section 3 of the paper). Operations in one class
// impose identical scheduling constraints, so the reduced description needs
// only one reservation table per class.
type Classes struct {
	// OfOp maps an operation index to its class id.
	OfOp []int
	// Rep maps a class id to a representative operation index.
	Rep []int
	// Members maps a class id to all member operation indices.
	Members [][]int
}

// NumClasses returns the number of operation classes.
func (c *Classes) NumClasses() int { return len(c.Rep) }

// ComputeClasses partitions the operations of the matrix into classes.
func (m *Matrix) ComputeClasses() *Classes {
	c := &Classes{OfOp: make([]int, m.NumOps)}
	for x := 0; x < m.NumOps; x++ {
		found := -1
		for ci, rep := range c.Rep {
			if m.sameClass(x, rep) {
				found = ci
				break
			}
		}
		if found < 0 {
			found = len(c.Rep)
			c.Rep = append(c.Rep, x)
			c.Members = append(c.Members, nil)
		}
		c.OfOp[x] = found
		c.Members[found] = append(c.Members[found], x)
	}
	return c
}

// sameClass reports whether ops x and y have identical rows and columns in
// the forbidden-latency matrix: F[x][z] == F[y][z] and F[z][x] == F[z][y]
// for every z. Note that taking z = x and z = y forces
// F[x][x] == F[x][y] == F[y][x] == F[y][y], so members of one class are
// fully interchangeable in every contention query.
func (m *Matrix) sameClass(x, y int) bool {
	if x == y {
		return true
	}
	for z := 0; z < m.NumOps; z++ {
		if !m.sets[x][z].Equal(m.sets[y][z]) {
			return false
		}
		if !m.sets[z][x].Equal(m.sets[z][y]) {
			return false
		}
	}
	return true
}

// Collapse restricts the matrix to one representative per class, producing
// the class-level forbidden-latency matrix that drives reduction. The
// element (a, b) of the result is F[Rep[a]][Rep[b]].
func (m *Matrix) Collapse(c *Classes) *Matrix {
	n := c.NumClasses()
	out := &Matrix{NumOps: n, Span: m.Span}
	out.sets = make([][]*bitset.Signed, n)
	for a := 0; a < n; a++ {
		out.sets[a] = make([]*bitset.Signed, n)
		for b := 0; b < n; b++ {
			out.sets[a][b] = m.sets[c.Rep[a]][c.Rep[b]].Clone()
		}
	}
	return out
}

// ClassMachine builds an expanded machine holding one operation per class
// (the class representative's reservation table, name and latency). The
// class-level machine is what the reduction algorithm consumes; its
// operation indices are class ids.
func ClassMachine(e *resmodel.Expanded, c *Classes) *resmodel.Expanded {
	out := &resmodel.Expanded{
		Name:      e.Name + ".classes",
		Resources: append([]string(nil), e.Resources...),
	}
	for ci, rep := range c.Rep {
		o := e.Ops[rep]
		out.Ops = append(out.Ops, resmodel.ExpandedOp{
			Name:    o.Name,
			Orig:    ci,
			Alt:     0,
			Latency: o.Latency,
			Table:   o.Table.Clone(),
		})
		out.AltGroup = append(out.AltGroup, []int{ci})
	}
	return out
}
