// Package loopgen generates the synthetic innermost-loop benchmark that
// stands in for the paper's 1327 loops from the Perfect Club, SPEC-89 and
// the Livermore Fortran Kernels (Section 8).
//
// The paper's loops are the Cydra 5 Fortran77 compiler's intermediate
// representation after load-store elimination, recurrence
// back-substitution and IF-conversion — unavailable outside HP Labs. The
// generator reproduces the benchmark's published marginals instead
// (Table 5: 2 to 161 operations per loop, average 17.54; recurrence
// density tuned so the Iterative Modulo Scheduler achieves II = MII on
// the vast majority of loops): each loop is a set of array streams
// (address update, load), a dataflow body of FP/integer compute
// operations, optional loop-carried accumulations, stores, and the
// Cydra 5 loop-control operations (icmp + brtop). Memory and address
// operations use the machine's dual-unit alternatives, matching the
// paper's "21% of the operations have exactly one alternative".
//
// Generation is fully deterministic for a given seed.
package loopgen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ddg"
	"repro/internal/resmodel"
)

// Config tunes the generator.
type Config struct {
	// Loops is the number of loops to generate (the paper uses 1327).
	Loops int
	// Seed makes the benchmark reproducible.
	Seed int64
	// MeanOps and SigmaOps shape the lognormal loop-size distribution;
	// sizes are clipped to [MinOps, MaxOps].
	MeanOps  float64
	SigmaOps float64
	MinOps   int
	MaxOps   int
	// RecurrenceProb is the probability that a loop carries a reduction
	// (e.g. a running sum) across iterations.
	RecurrenceProb float64
}

// Default returns the configuration calibrated against Table 5.
func Default() Config {
	return Config{
		Loops:          1327,
		Seed:           19960521, // PLDI '96, May 21
		MeanOps:        2.42,
		SigmaOps:       0.85,
		MinOps:         2,
		MaxOps:         161,
		RecurrenceProb: 0.45,
	}
}

// ops used by the generator; all must exist on the target machine and
// form the benchmark subset of Table 2.
type opset struct {
	ldw, stw, aadd, faddS, fmulS, fmadd, iadd, icmp, brtop int
	latency                                                func(op int) int
}

func resolve(m *resmodel.Machine) (opset, error) {
	idx := func(name string) int { return m.OpIndex(name) }
	o := opset{
		ldw: idx("ld.w"), stw: idx("st.w"), aadd: idx("aadd"),
		faddS: idx("fadd.s"), fmulS: idx("fmul.s"), fmadd: idx("fmadd"),
		iadd: idx("iadd"), icmp: idx("icmp"), brtop: idx("brtop"),
	}
	for _, v := range []int{o.ldw, o.stw, o.aadd, o.faddS, o.fmulS, o.fmadd, o.iadd, o.icmp, o.brtop} {
		if v < 0 {
			return o, fmt.Errorf("loopgen: machine %q lacks a benchmark operation", m.Name)
		}
	}
	o.latency = func(op int) int { return m.Ops[op].Latency }
	return o, nil
}

// Generate produces the benchmark loops for the given machine (normally
// the Cydra 5 description).
func Generate(m *resmodel.Machine, cfg Config) ([]*ddg.Graph, error) {
	o, err := resolve(m)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	loops := make([]*ddg.Graph, 0, cfg.Loops)
	for i := 0; i < cfg.Loops; i++ {
		size := cfg.MinOps + int(math.Exp(rng.NormFloat64()*cfg.SigmaOps+cfg.MeanOps))
		if size > cfg.MaxOps {
			size = cfg.MaxOps
		}
		g := genLoop(rng, o, fmt.Sprintf("loop%04d", i), size, profile{
			recProb: cfg.RecurrenceProb, memNum: 1, memDen: 10,
		})
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("loopgen: generated invalid loop %d: %v", i, err)
		}
		loops = append(loops, g)
	}
	return loops, nil
}

// profile is the shape knob set genLoop draws from: the recurrence
// probability and the memory-operation density as an exact rational
// (memNum/memDen of the remaining budget goes to address streams, and
// again to stores). Generate uses {recProb, 1, 10} — with those values
// budget*memNum/memDen == budget/10 for every budget, so the historical
// byte-exact output is preserved (pinned by TestGenerateDeterministic).
// Since loads, stores and address updates are the operations with
// dual-unit alternatives on the Cydra 5, the density is also the
// alternative-mix axis of the stratified stream.
type profile struct {
	recProb        float64
	memNum, memDen int
}

// genLoop builds one loop of approximately the requested size.
func genLoop(rng *rand.Rand, o opset, name string, size int, p profile) *ddg.Graph {
	g := &ddg.Graph{Name: name}
	add := func(op int, nm string) int {
		g.Nodes = append(g.Nodes, ddg.Node{Name: nm, Op: op})
		return len(g.Nodes) - 1
	}
	flow := func(from, to int) {
		g.Edges = append(g.Edges, ddg.Edge{From: from, To: to, Delay: o.latency(g.Nodes[from].Op)})
	}

	// Loop control: induction update and loop-back branch; all but the
	// tiniest loops also test the induction variable explicitly (brtop can
	// branch on the ECR counter alone).
	ctr := add(o.aadd, "i.next")
	g.Edges = append(g.Edges, ddg.Edge{From: ctr, To: ctr, Delay: o.latency(o.aadd), Dist: 1})
	br := add(o.brtop, "loop.br")
	budget := size - 2
	if size > 3 {
		test := add(o.icmp, "i.test")
		flow(ctr, test)
		flow(test, br)
		budget--
	} else {
		flow(ctr, br)
	}

	// Array streams: address update + load. Stream addresses are
	// induction variables (loop-carried self-dependences).
	nStreams := 1 + budget*p.memNum/p.memDen
	if nStreams > 10 {
		nStreams = 10
	}
	// After strength reduction several loads typically share one induction
	// variable, so each address stream serves 1-3 loads.
	var values []int // nodes producing data values usable as operands
	for s := 0; s < nStreams && budget >= 2; s++ {
		a := add(o.aadd, fmt.Sprintf("addr%d", s))
		g.Edges = append(g.Edges, ddg.Edge{From: a, To: a, Delay: o.latency(o.aadd), Dist: 1})
		budget--
		nLoads := 1 + rng.Intn(3)
		for l := 0; l < nLoads && budget >= 1; l++ {
			ld := add(o.ldw, fmt.Sprintf("load%d_%d", s, l))
			flow(a, ld)
			values = append(values, ld)
			budget--
		}
	}

	if len(values) == 0 {
		values = append(values, ctr) // tiny loop: the induction variable is the only value
	}

	// Dataflow body: compute operations consuming earlier values.
	computeOps := []int{o.faddS, o.fmulS, o.fmadd, o.iadd}
	nStores := budget * p.memNum / p.memDen
	for budget > nStores*2 {
		op := computeOps[rng.Intn(len(computeOps))]
		v := add(op, fmt.Sprintf("t%d", len(g.Nodes)))
		nIn := 1 + rng.Intn(2)
		for k := 0; k < nIn; k++ {
			flow(values[rng.Intn(len(values))], v)
		}
		values = append(values, v)
		budget--
	}

	// Loop-carried reduction: a compute op feeding itself next iteration
	// (sum = sum + x). Distance occasionally 2 (back-substituted
	// recurrences), which halves its RecMII contribution.
	if rng.Float64() < p.recProb {
		accOp := o.faddS
		if rng.Intn(3) == 0 {
			accOp = o.fmadd
		}
		acc := add(accOp, "acc")
		flow(values[rng.Intn(len(values))], acc)
		dist := 1
		if rng.Intn(4) == 0 {
			dist = 2
		}
		g.Edges = append(g.Edges, ddg.Edge{From: acc, To: acc, Delay: o.latency(accOp), Dist: dist})
		values = append(values, acc)
		budget--
	}

	// Stores of computed values; stores share one address stream.
	if budget >= 2 {
		a := add(o.aadd, "staddr")
		g.Edges = append(g.Edges, ddg.Edge{From: a, To: a, Delay: o.latency(o.aadd), Dist: 1})
		budget--
		for s := 0; budget >= 1; s++ {
			st := add(o.stw, fmt.Sprintf("store%d", s))
			flow(a, st)
			flow(values[rng.Intn(len(values))], st)
			budget--
		}
	}
	return g
}

// Stats summarizes a generated benchmark for Table 5-style reporting.
type Stats struct {
	Loops       int
	MinOps      int
	AvgOps      float64
	MaxOps      int
	AltFraction float64 // fraction of operations with exactly one alternative
}

// Summarize computes benchmark statistics.
func Summarize(m *resmodel.Machine, loops []*ddg.Graph) Stats {
	s := Stats{Loops: len(loops), MinOps: math.MaxInt32}
	total, withAlt := 0, 0
	for _, g := range loops {
		n := len(g.Nodes)
		total += n
		if n < s.MinOps {
			s.MinOps = n
		}
		if n > s.MaxOps {
			s.MaxOps = n
		}
		for _, node := range g.Nodes {
			if len(m.Ops[node.Op].Alts) == 2 {
				withAlt++
			}
		}
	}
	if len(loops) > 0 {
		s.AvgOps = float64(total) / float64(len(loops))
	}
	if total > 0 {
		s.AltFraction = float64(withAlt) / float64(total)
	}
	return s
}
