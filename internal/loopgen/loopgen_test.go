package loopgen

import (
	"testing"
	"testing/quick"

	"repro/internal/machines"
)

func TestGenerateDeterministic(t *testing.T) {
	m := machines.Cydra5()
	cfg := Default()
	cfg.Loops = 25
	a, err := Generate(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if len(a[i].Nodes) != len(b[i].Nodes) || len(a[i].Edges) != len(b[i].Edges) {
			t.Fatalf("loop %d differs across runs", i)
		}
		for j := range a[i].Nodes {
			if a[i].Nodes[j] != b[i].Nodes[j] {
				t.Fatalf("loop %d node %d differs", i, j)
			}
		}
		for j := range a[i].Edges {
			if a[i].Edges[j] != b[i].Edges[j] {
				t.Fatalf("loop %d edge %d differs", i, j)
			}
		}
	}
}

func TestGenerateAllValid(t *testing.T) {
	m := machines.Cydra5()
	cfg := Default()
	cfg.Loops = 200
	loops, err := Generate(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, g := range loops {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		// Every loop ends in exactly one brtop.
		brtop := m.OpIndex("brtop")
		count := 0
		for _, n := range g.Nodes {
			if n.Op == brtop {
				count++
			}
		}
		if count != 1 {
			t.Fatalf("%s: %d brtop ops", g.Name, count)
		}
	}
}

func TestGenerateRejectsWrongMachine(t *testing.T) {
	if _, err := Generate(machines.MIPS(), Default()); err == nil {
		t.Fatalf("MIPS machine accepted (lacks Cydra ops)")
	}
}

func TestSummarizeMarginals(t *testing.T) {
	m := machines.Cydra5()
	loops, err := Generate(m, Default())
	if err != nil {
		t.Fatal(err)
	}
	s := Summarize(m, loops)
	if s.Loops != 1327 {
		t.Errorf("Loops = %d", s.Loops)
	}
	if s.MinOps < 2 || s.MinOps > 3 {
		t.Errorf("MinOps = %d, want 2-3 (Table 5: 2)", s.MinOps)
	}
	if s.AvgOps < 15.5 || s.AvgOps > 19.5 {
		t.Errorf("AvgOps = %.2f, want ~17.54 (Table 5)", s.AvgOps)
	}
	if s.MaxOps != 161 {
		t.Errorf("MaxOps = %d, want 161 (Table 5)", s.MaxOps)
	}
	if s.AltFraction < 0.15 || s.AltFraction > 0.45 {
		t.Errorf("AltFraction = %.2f, want ~0.21", s.AltFraction)
	}
}

// Property: generation never panics and always yields valid graphs with
// sizes within bounds, for arbitrary seeds.
func TestQuickGenerate(t *testing.T) {
	m := machines.Cydra5()
	f := func(seed int64) bool {
		cfg := Default()
		cfg.Seed = seed
		cfg.Loops = 8
		loops, err := Generate(m, cfg)
		if err != nil {
			return false
		}
		for _, g := range loops {
			if len(g.Nodes) < cfg.MinOps || len(g.Nodes) > cfg.MaxOps {
				return false
			}
			if g.Validate() != nil {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGenerateDAGs(t *testing.T) {
	m := machines.MIPS()
	cfg := DefaultDAG(m)
	cfg.Blocks = 40
	dags, err := GenerateDAGs(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(dags) != 40 {
		t.Fatalf("blocks = %d", len(dags))
	}
	for _, g := range dags {
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", g.Name, err)
		}
		for _, e := range g.Edges {
			if e.Dist != 0 {
				t.Fatalf("%s: DAG has loop-carried edge", g.Name)
			}
		}
		if len(g.Nodes) < 2 {
			t.Fatalf("%s: too small", g.Name)
		}
	}
	// Determinism.
	again, err := GenerateDAGs(m, cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range dags {
		if len(again[i].Nodes) != len(dags[i].Nodes) || len(again[i].Edges) != len(dags[i].Edges) {
			t.Fatalf("DAG generation not deterministic")
		}
	}
}

func TestGenerateDAGsErrors(t *testing.T) {
	m := machines.MIPS()
	if _, err := GenerateDAGs(m, DAGConfig{Blocks: 1, MeanOps: 4}); err == nil {
		t.Error("empty op list accepted")
	}
	bad := DefaultDAG(m)
	bad.OpNames = []string{"zzz"}
	if _, err := GenerateDAGs(m, bad); err == nil {
		t.Error("unknown op accepted")
	}
}
