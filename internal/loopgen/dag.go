package loopgen

import (
	"fmt"
	"math/rand"

	"repro/internal/ddg"
	"repro/internal/resmodel"
)

// DAGConfig controls straight-line (acyclic) code generation, used to
// exercise the acyclic list scheduler on the MIPS and Alpha machines.
type DAGConfig struct {
	Seed int64
	// Blocks is the number of basic blocks to generate.
	Blocks int
	// MeanOps approximates the average block size.
	MeanOps int
	// OpNames is the instruction mix; each generated op is drawn uniformly.
	OpNames []string
}

// DefaultDAG returns a generic scalar-code configuration for the machine.
func DefaultDAG(m *resmodel.Machine) DAGConfig {
	var names []string
	for _, o := range m.Ops {
		names = append(names, o.Name)
	}
	return DAGConfig{Seed: 1327, Blocks: 100, MeanOps: 24, OpNames: names}
}

// GenerateDAGs produces acyclic dependence graphs (basic blocks) over the
// machine's operations. Each op depends on one or two earlier ops with
// probability shaped to give realistic ILP (roughly 2-4 independent
// chains).
func GenerateDAGs(m *resmodel.Machine, cfg DAGConfig) ([]*ddg.Graph, error) {
	if len(cfg.OpNames) == 0 {
		return nil, fmt.Errorf("loopgen: DAG config has no op names")
	}
	ops := make([]int, len(cfg.OpNames))
	for i, n := range cfg.OpNames {
		ops[i] = m.OpIndex(n)
		if ops[i] < 0 {
			return nil, fmt.Errorf("loopgen: machine %q has no op %q", m.Name, n)
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	var out []*ddg.Graph
	for b := 0; b < cfg.Blocks; b++ {
		size := 2 + rng.Intn(2*cfg.MeanOps-2)
		g := &ddg.Graph{Name: fmt.Sprintf("block%03d", b)}
		for i := 0; i < size; i++ {
			op := ops[rng.Intn(len(ops))]
			g.Nodes = append(g.Nodes, ddg.Node{Name: fmt.Sprintf("n%d", i), Op: op})
			if i == 0 {
				continue
			}
			nIn := 1
			if rng.Intn(3) == 0 {
				nIn = 2
			}
			if rng.Intn(4) == 0 {
				nIn = 0 // start of an independent chain
			}
			for k := 0; k < nIn; k++ {
				from := rng.Intn(i)
				g.Edges = append(g.Edges, ddg.Edge{
					From: from, To: i, Delay: m.Ops[g.Nodes[from].Op].Latency,
				})
			}
		}
		if err := g.Validate(); err != nil {
			return nil, fmt.Errorf("loopgen: generated invalid DAG: %v", err)
		}
		out = append(out, g)
	}
	return out, nil
}
