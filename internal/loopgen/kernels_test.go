package loopgen

import (
	"testing"

	"repro/internal/ddg"
	"repro/internal/machines"
)

func TestKernelsParseAndBounds(t *testing.T) {
	m := machines.Cydra5()
	ks, err := ParseKernels(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(ks) != len(Kernels()) {
		t.Fatalf("parsed %d of %d kernels", len(ks), len(Kernels()))
	}
	uc := ddg.MachineUsage{M: m}
	wantRec := map[string]int{
		"daxpy":       2,  // address-increment recurrence only
		"dot":         6,  // fadd.s latency through the accumulator
		"firstdiff":   2,  // streams only
		"tridiag":     13, // sub(6) + mul(7) around the distance-1 recurrence
		"state2":      3,  // ceil(6/2) dominates the 2-cycle address recurrence
		"sgefa-inner": 2,
		"madd-chain":  2,
		"intsum":      2, // address recurrence; integer acc is 1/1
	}
	for i, k := range Kernels() {
		g := ks[i]
		if err := g.Validate(); err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if got := g.RecMII(); got != wantRec[k.Name] {
			t.Errorf("%s: RecMII = %d, want %d", k.Name, got, wantRec[k.Name])
		}
		if g.MII(uc) < g.RecMII() {
			t.Errorf("%s: MII below RecMII", k.Name)
		}
	}
}
