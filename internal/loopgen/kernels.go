package loopgen

import (
	"fmt"

	"repro/internal/ddg"
	"repro/internal/resmodel"
)

// Kernel is a named, hand-written loop in the spirit of the Livermore
// Fortran Kernels — the recognizable end of the paper's benchmark suite.
// Each is authored in the textual ddg format against the Cydra 5
// operation set, with realistic dependence structure (streaming loads,
// reductions, first-order recurrences).
type Kernel struct {
	Name string
	// What the loop computes, in scalar notation.
	Desc string
	Src  string
}

// Kernels returns the named kernels. They parse against any machine that
// provides the Cydra 5 benchmark operations.
func Kernels() []Kernel {
	return []Kernel{
		{
			Name: "daxpy",
			Desc: "y[i] = y[i] + a*x[i]   (Livermore/BLAS axpy: independent iterations)",
			Src: `
loop daxpy
node ix   aadd
node ldx  ld.w
node ldy  ld.w
node mul  fmul.s
node add  fadd.s
node sa   aadd
node st   st.w
node test icmp
node br   brtop
edge ix ix delay 2 dist 1
edge ix ldx delay 2
edge ix ldy delay 2
edge ldx mul delay 22
edge ldy add delay 22
edge mul add delay 7
edge sa sa delay 2 dist 1
edge sa st delay 2
edge add st delay 6
edge test br delay 1
`,
		},
		{
			Name: "dot",
			Desc: "s += x[i]*y[i]   (inner product: one FP-add recurrence)",
			Src: `
loop dot
node ix   aadd
node ldx  ld.w
node ldy  ld.w
node mul  fmul.s
node acc  fadd.s
node test icmp
node br   brtop
edge ix ix delay 2 dist 1
edge ix ldx delay 2
edge ix ldy delay 2
edge ldx mul delay 22
edge ldy mul delay 22
edge mul acc delay 7
edge acc acc delay 6 dist 1
edge test br delay 1
`,
		},
		{
			Name: "firstdiff",
			Desc: "d[i] = x[i+1] - x[i]   (Livermore K12: reuses the stream, no recurrence)",
			Src: `
loop firstdiff
node ix   aadd
node ld0  ld.w
node ld1  ld.w
node sub  fadd.s
node sa   aadd
node st   st.w
node test icmp
node br   brtop
edge ix ix delay 2 dist 1
edge ix ld0 delay 2
edge ix ld1 delay 2
edge ld0 sub delay 22
edge ld1 sub delay 22
edge sa sa delay 2 dist 1
edge sub st delay 6
edge sa st delay 2
edge test br delay 1
`,
		},
		{
			Name: "tridiag",
			Desc: "x[i] = z[i]*(y[i] - x[i-1])   (Livermore K5: first-order recurrence through two FP ops)",
			Src: `
loop tridiag
node iy   aadd
node ldy  ld.w
node ldz  ld.w
node sub  fadd.s
node mul  fmul.s
node sx   aadd
node st   st.w
node test icmp
node br   brtop
edge iy iy delay 2 dist 1
edge iy ldy delay 2
edge iy ldz delay 2
edge ldy sub delay 22
edge mul sub delay 7 dist 1
edge sub mul delay 6
edge ldz mul delay 22
edge sx sx delay 2 dist 1
edge mul st delay 7
edge sx st delay 2
edge test br delay 1
`,
		},
		{
			Name: "state2",
			Desc: "s = s + a*s' (second-order-style recurrence at distance 2, back-substituted)",
			Src: `
loop state2
node ix   aadd
node ld   ld.w
node mul  fmul.s
node acc  fadd.s
node test icmp
node br   brtop
edge ix ix delay 2 dist 1
edge ix ld delay 2
edge ld mul delay 22
edge mul acc delay 7
edge acc acc delay 6 dist 2
edge test br delay 1
`,
		},
		{
			Name: "sgefa-inner",
			Desc: "a[i] += t*b[i] with strided addresses (LINPACK elimination inner loop)",
			Src: `
loop sgefa
node ia   aadd
node ib   aadd
node lda  ld.w
node ldb  ld.w
node mul  fmul.s
node add  fadd.s
node st   st.w
node test icmp
node br   brtop
edge ia ia delay 2 dist 1
edge ib ib delay 2 dist 1
edge ia lda delay 2
edge ib ldb delay 2
edge ldb mul delay 22
edge lda add delay 22
edge mul add delay 7
edge add st delay 6
edge ia st delay 2
edge test br delay 1
`,
		},
		{
			Name: "madd-chain",
			Desc: "r[i] = (a[i]*b[i] + c[i]) using the fused multiply-add unit",
			Src: `
loop maddchain
node ix   aadd
node lda  ld.w
node ldb  ld.w
node ldc  ld.w
node fma  fmadd
node sa   aadd
node st   st.w
node test icmp
node br   brtop
edge ix ix delay 2 dist 1
edge ix lda delay 2
edge ix ldb delay 2
edge ix ldc delay 2
edge lda fma delay 22
edge ldb fma delay 22
edge ldc fma delay 22
edge sa sa delay 2 dist 1
edge fma st delay 9
edge sa st delay 2
edge test br delay 1
`,
		},
		{
			Name: "intsum",
			Desc: "k += idx[i]   (integer reduction on the FP-adder unit's integer path)",
			Src: `
loop intsum
node ix   aadd
node ld   ld.w
node acc  iadd
node test icmp
node br   brtop
edge ix ix delay 2 dist 1
edge ix ld delay 2
edge ld acc delay 22
edge acc acc delay 1 dist 1
edge test br delay 1
`,
		},
	}
}

// ParseKernels parses every kernel against the machine.
func ParseKernels(m *resmodel.Machine) ([]*ddg.Graph, error) {
	var out []*ddg.Graph
	for _, k := range Kernels() {
		g, err := ddg.Parse(k.Src, m)
		if err != nil {
			return nil, fmt.Errorf("loopgen: kernel %s: %w", k.Name, err)
		}
		out = append(out, g)
	}
	return out, nil
}
