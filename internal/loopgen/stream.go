package loopgen

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ddg"
	"repro/internal/resmodel"
)

// Stratum is one cell of a stratified benchmark: a loop-size
// distribution (lognormal, clipped), a recurrence density, and a
// memory-operation density. Memory operations (loads, stores, address
// updates) are the Cydra 5 operations with dual-unit alternatives, so
// MemNum/MemDen is the stream's alternative-mix axis.
type Stratum struct {
	// Name prefixes the loops of this stratum ("<name>.<index>").
	Name string
	// Weight is the stratum's share of the corpus; the stream interleaves
	// strata by highest-averages apportionment, so any prefix of the
	// stream is itself approximately weight-proportional.
	Weight int
	// MeanOps/SigmaOps/MinOps/MaxOps shape the size distribution exactly
	// like the corresponding Config fields.
	MeanOps  float64
	SigmaOps float64
	MinOps   int
	MaxOps   int
	// RecurrenceProb is the per-loop probability of a loop-carried
	// reduction.
	RecurrenceProb float64
	// MemNum/MemDen is the fraction of the op budget spent on address
	// streams (and again on stores); Generate's historical value is 1/10.
	MemNum, MemDen int
}

// Strata configures a streamed stratified corpus: Loops total loops
// drawn from the given strata, fully determined by Seed.
type Strata struct {
	Loops  int
	Seed   int64
	Strata []Stratum
}

// DefaultStrata returns the default stratification for a corpus of the
// given size: a 3 (size) x 2 (recurrence density) x 2 (memory mix) grid
// with the paper-calibrated center cell weighted heaviest.
func DefaultStrata(loops int) Strata {
	sizes := []struct {
		name  string
		mean  float64
		sigma float64
		min   int
		max   int
	}{
		{"sm", 1.6, 0.6, 2, 24},
		{"md", 2.42, 0.85, 2, 161}, // Table 5 calibration (Default())
		{"lg", 3.4, 0.5, 24, 161},
	}
	recs := []struct {
		name string
		p    float64
	}{
		{"lo", 0.15},
		{"hi", 0.7},
	}
	mems := []struct {
		name     string
		num, den int
	}{
		{"m10", 1, 10}, // the paper mix (Generate's historical density)
		{"m6", 1, 6},   // memory-heavy: more dual-alternative operations
	}
	st := Strata{Loops: loops, Seed: 19960521}
	for _, sz := range sizes {
		for _, rc := range recs {
			for _, mm := range mems {
				w := 1
				if sz.name == "md" && rc.name == "lo" && mm.name == "m10" {
					w = 4 // the Table 5 center cell dominates, like the real corpus
				}
				st.Strata = append(st.Strata, Stratum{
					Name:           sz.name + rc.name + mm.name,
					Weight:         w,
					MeanOps:        sz.mean,
					SigmaOps:       sz.sigma,
					MinOps:         sz.min,
					MaxOps:         sz.max,
					RecurrenceProb: rc.p,
					MemNum:         mm.num,
					MemDen:         mm.den,
				})
			}
		}
	}
	return st
}

func (st *Strata) validate() error {
	if st.Loops < 0 {
		return fmt.Errorf("loopgen: negative loop count %d", st.Loops)
	}
	if len(st.Strata) == 0 {
		return fmt.Errorf("loopgen: no strata")
	}
	for i, s := range st.Strata {
		if s.Weight < 1 {
			return fmt.Errorf("loopgen: stratum %d (%s): weight %d < 1", i, s.Name, s.Weight)
		}
		if s.MinOps < 2 || s.MaxOps < s.MinOps {
			return fmt.Errorf("loopgen: stratum %d (%s): size bounds [%d, %d] invalid (need 2 <= min <= max)",
				i, s.Name, s.MinOps, s.MaxOps)
		}
		if s.MemNum < 0 || s.MemDen < 1 {
			return fmt.Errorf("loopgen: stratum %d (%s): memory mix %d/%d invalid",
				i, s.Name, s.MemNum, s.MemDen)
		}
	}
	return nil
}

// splitmix64 is the SplitMix64 finalizer: a bijective 64-bit mixer used
// to derive an independent per-loop seed from (corpus seed, stratum,
// index). Any loop of the corpus can therefore be regenerated in
// isolation — random access, and race-free generation of different
// strata from different workers.
func splitmix64(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9
	x = (x ^ (x >> 27)) * 0x94D049BB133111EB
	return x ^ (x >> 31)
}

// loopSeed derives the rng seed of loop k of stratum si.
func (st *Strata) loopSeed(si, k int) int64 {
	return int64(splitmix64(splitmix64(uint64(st.Seed)) ^ uint64(si)<<40 ^ uint64(k)))
}

// pickStratum returns the stratum the next loop is drawn from, given the
// per-stratum counts so far: the highest-averages (D'Hondt) rule — the
// stratum maximizing Weight/(count+1), lowest index on ties. The rule is
// deterministic and stateless in everything but the counts, so the batch
// helpers reproduce the stream's apportionment exactly.
func (st *Strata) pickStratum(counts []int) int {
	best := 0
	for i := 1; i < len(counts); i++ {
		if st.Strata[i].Weight*(counts[best]+1) > st.Strata[best].Weight*(counts[i]+1) {
			best = i
		}
	}
	return best
}

// Counts returns how many loops each stratum contributes to the corpus
// — the apportionment the stream's interleave realizes.
func (st *Strata) Counts() []int {
	counts := make([]int, len(st.Strata))
	for n := 0; n < st.Loops; n++ {
		counts[st.pickStratum(counts)]++
	}
	return counts
}

// Stream yields the corpus one loop at a time, so a 10^5..10^6-loop
// corpus is scheduled in flat memory: the caller owns each returned
// graph and the stream retains nothing. Each loop is generated from its
// own seed — the retained rand.Rand is reseeded per loop — so the
// stream's output is a pure function of the Strata value and can be
// reproduced per stratum (StratumLoops) or in batch (GenerateStrata).
type Stream struct {
	o       opset
	st      Strata
	counts  []int
	emitted int
	rng     *rand.Rand
}

// NewStream validates the configuration against the machine and returns
// a stream positioned at the first loop.
func NewStream(m *resmodel.Machine, st Strata) (*Stream, error) {
	if err := st.validate(); err != nil {
		return nil, err
	}
	o, err := resolve(m)
	if err != nil {
		return nil, err
	}
	return &Stream{
		o:      o,
		st:     st,
		counts: make([]int, len(st.Strata)),
		rng:    newFastRand(0),
	}, nil
}

// Loops returns the total number of loops the stream yields.
func (s *Stream) Loops() int { return s.st.Loops }

// Next returns the next loop of the corpus, or ok=false when the corpus
// is exhausted. The returned graph is freshly built and owned by the
// caller.
func (s *Stream) Next() (g *ddg.Graph, ok bool) {
	if s.emitted >= s.st.Loops {
		return nil, false
	}
	si := s.st.pickStratum(s.counts)
	k := s.counts[si]
	s.counts[si]++
	s.emitted++
	return genStratumLoop(s.rng, s.o, &s.st, si, k), true
}

// genStratumLoop generates loop k of stratum si; rng is reseeded, so
// only its allocation is reused — the output depends on (st, si, k)
// alone.
func genStratumLoop(rng *rand.Rand, o opset, st *Strata, si, k int) *ddg.Graph {
	rng.Seed(st.loopSeed(si, k))
	sp := &st.Strata[si]
	size := sp.MinOps + int(math.Exp(rng.NormFloat64()*sp.SigmaOps+sp.MeanOps))
	if size > sp.MaxOps {
		size = sp.MaxOps
	}
	g := genLoop(rng, o, fmt.Sprintf("%s.%06d", sp.Name, k), size, profile{
		recProb: sp.RecurrenceProb, memNum: sp.MemNum, memDen: sp.MemDen,
	})
	if err := g.Validate(); err != nil {
		panic(fmt.Sprintf("loopgen: stratum %s loop %d invalid: %v", sp.Name, k, err))
	}
	return g
}

// GenerateStrata materializes the whole streamed corpus as a slice —
// the batch equivalent of draining a Stream, byte-identical to it
// (pinned by the stream/batch equivalence test).
func GenerateStrata(m *resmodel.Machine, st Strata) ([]*ddg.Graph, error) {
	s, err := NewStream(m, st)
	if err != nil {
		return nil, err
	}
	out := make([]*ddg.Graph, 0, st.Loops)
	for {
		g, ok := s.Next()
		if !ok {
			return out, nil
		}
		out = append(out, g)
	}
}

// StratumLoops generates stratum si's share of the corpus standalone,
// in stream order — byte-identical to the subsequence of the stream
// belonging to that stratum. Different strata can be generated
// concurrently: each call owns its rand.Rand and shares nothing.
func StratumLoops(m *resmodel.Machine, st Strata, si int) ([]*ddg.Graph, error) {
	if err := st.validate(); err != nil {
		return nil, err
	}
	if si < 0 || si >= len(st.Strata) {
		return nil, fmt.Errorf("loopgen: stratum index %d out of range [0, %d)", si, len(st.Strata))
	}
	o, err := resolve(m)
	if err != nil {
		return nil, err
	}
	n := st.Counts()[si]
	rng := newFastRand(0)
	out := make([]*ddg.Graph, n)
	for k := 0; k < n; k++ {
		out[k] = genStratumLoop(rng, o, &st, si, k)
	}
	return out, nil
}
