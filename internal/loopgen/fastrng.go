package loopgen

import "math/rand"

// fastSource is a bit-exact drop-in for math/rand's default source (the
// Mitchell & Reeds additive lagged-Fibonacci generator behind
// rand.NewSource) with a ~3x cheaper Seed. The corpus streams reseed
// their generator once per loop — the price of random access into a
// 10^5..10^6-loop corpus — and the CPU profile of the streamed
// throughput benchmark showed that reseeding alone was ~20% of the
// whole scheduling pipeline: Seed rebuilds the generator's 607-word
// feedback register, three Lehmer steps per word, and math/rand's
// Schrage-decomposition step chains ~1840 dependent divisions.
//
// This implementation produces the identical stream (pinned per draw
// against math/rand by TestFastSourceMatchesMathRand) from two exact
// rewrites of the seeding loop:
//
//   - Each Lehmer step x' = 48271*x mod 2^31-1 uses the Mersenne-prime
//     fold ((p & M) + (p >> 31), one conditional subtract) instead of
//     Schrage's hi/lo decomposition — same residue, fewer operations,
//     shorter dependency chain.
//   - The register words consume seed-chain values x_{21+3i}, x_{22+3i},
//     x_{23+3i}; advancing three interleaved chains by A^3 mod M makes
//     consecutive steps independent, so the three multiplies per word
//     retire in parallel instead of serializing.
//
// The additive feedback register itself (Uint64) is unchanged.
//
// Seeding also XORs a constant 607-word table that math/rand ships
// precomputed (rngCooked, the generator state after 7.8e12 warm-up
// steps — see math/rand/gen_cooked.go). Rather than vendor those
// constants, init() recovers them from the standard library at process
// start: the first 607 outputs of a freshly seeded source are pairwise
// sums over its initial register, which invert exactly (recoverCooked),
// and XORing out the known seed chain leaves the table. Recovery is a
// few hundred additions, runs once, and stays correct by construction
// against the Go 1 compatibility promise that freezes math/rand's
// stream.
type fastSource struct {
	tap, feed int
	vec       [rngLen]uint64
}

const (
	rngLen  = 607
	rngTap  = 273
	rngMask = 1<<63 - 1

	lehmerM = 1<<31 - 1 // 2^31-1, prime
	lehmerA = 48271
)

var (
	lehmerA3 uint64 // 48271^3 mod 2^31-1, the interleaved-chain stride
	cooked   [rngLen]uint64
)

// lehmer advances one Lehmer step: a*x mod 2^31-1, for a, x in
// [1, 2^31-1). The fold exploits 2^31 == 1 (mod M): the product's high
// and low halves add to the same residue, and one conditional subtract
// normalizes (the sum is < 2M because a*x < 2^62-2^33).
func lehmer(x, a uint64) uint64 {
	p := a * x
	x = p&lehmerM + p>>31
	if x >= lehmerM {
		x -= lehmerM
	}
	return x
}

func init() {
	lehmerA3 = lehmer(lehmer(lehmerA, lehmerA), lehmerA)
	recoverCooked()
}

// recoverCooked reconstructs math/rand's seeding table. Seed(1) leaves
// register word i equal to chain_i ^ cooked[i] where chain_i derives
// from the documented Lehmer seed chain; the additive generator's
// output k is vec[feed_k] + vec[tap_k]. Walking the tap/feed schedule:
// outputs 274..607 tap a word the feed already overwrote (at output
// k-273), so they are "fresh word + known output"; outputs 1..273 tap
// an original word recovered by the first pass. Two passes of uint64
// subtraction recover the full initial register, and the seed chain
// XORs out to the table.
func recoverCooked() {
	src := rand.NewSource(1).(rand.Source64)
	var out [rngLen + 1]uint64
	for k := 1; k <= rngLen; k++ {
		out[k] = src.Uint64()
	}
	var vec [rngLen]uint64
	// Outputs 274..607 tap a word overwritten by output k-273, so both
	// summands are known outputs; 1..273 tap an original word from the
	// first pass, the feed word always the unknown.
	for k := 274; k <= 607; k++ {
		vec[(334-k+rngLen)%rngLen] = out[k] - out[k-273]
	}
	for k := 1; k <= 273; k++ {
		vec[334-k] = out[k] - vec[607-k]
	}
	x := uint64(1) // Seed(1): the normalized seed is 1
	for j := 0; j < 20; j++ {
		x = lehmer(x, lehmerA)
	}
	for i := 0; i < rngLen; i++ {
		a := lehmer(x, lehmerA)
		b := lehmer(a, lehmerA)
		x = lehmer(b, lehmerA)
		cooked[i] = vec[i] ^ (a<<40 ^ b<<20 ^ x)
	}
}

// newFastRand returns a *rand.Rand over a fastSource seeded with seed —
// the drop-in for rand.New(rand.NewSource(seed)).
func newFastRand(seed int64) *rand.Rand {
	s := new(fastSource)
	s.Seed(seed)
	return rand.New(s)
}

// Seed implements rand.Source exactly like math/rand: normalize the
// seed into (0, 2^31-1), run the 20-step warm-up, then fill the
// register from the chain, three values per word, XORing the cooked
// table. The three chains advance independently by A^3.
func (r *fastSource) Seed(seed int64) {
	r.tap, r.feed = 0, rngLen-rngTap
	s := seed % lehmerM
	if s < 0 {
		s += lehmerM
	}
	if s == 0 {
		s = 89482311
	}
	x := uint64(s)
	for j := 0; j < 20; j++ {
		x = lehmer(x, lehmerA)
	}
	a := lehmer(x, lehmerA)
	b := lehmer(a, lehmerA)
	c := lehmer(b, lehmerA)
	for i := 0; i < rngLen; i++ {
		r.vec[i] = a<<40 ^ b<<20 ^ c ^ cooked[i]
		a = lehmer(a, lehmerA3)
		b = lehmer(b, lehmerA3)
		c = lehmer(c, lehmerA3)
	}
}

// Uint64 implements rand.Source64 — the unchanged additive feedback
// register walk.
func (r *fastSource) Uint64() uint64 {
	r.tap--
	if r.tap < 0 {
		r.tap += rngLen
	}
	r.feed--
	if r.feed < 0 {
		r.feed += rngLen
	}
	x := r.vec[r.feed] + r.vec[r.tap]
	r.vec[r.feed] = x
	return x
}

// Int63 implements rand.Source.
func (r *fastSource) Int63() int64 { return int64(r.Uint64() & rngMask) }
