package loopgen

import (
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/ddg"
	"repro/internal/machines"
)

func sameGraph(a, b *ddg.Graph) bool {
	return a.Name == b.Name &&
		reflect.DeepEqual(a.Nodes, b.Nodes) &&
		reflect.DeepEqual(a.Edges, b.Edges)
}

// TestStreamMatchesBatch pins the streamed corpus byte-identical to the
// batch API for the same configuration: two independent streams agree
// loop by loop, and GenerateStrata materializes exactly the stream's
// sequence.
func TestStreamMatchesBatch(t *testing.T) {
	m := machines.Cydra5()
	st := DefaultStrata(500)
	batch, err := GenerateStrata(m, st)
	if err != nil {
		t.Fatal(err)
	}
	if len(batch) != 500 {
		t.Fatalf("GenerateStrata returned %d loops, want 500", len(batch))
	}
	s, err := NewStream(m, st)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; ; i++ {
		g, ok := s.Next()
		if !ok {
			if i != len(batch) {
				t.Fatalf("stream exhausted after %d loops, batch has %d", i, len(batch))
			}
			break
		}
		if !sameGraph(g, batch[i]) {
			t.Fatalf("loop %d: stream %q (%d nodes) != batch %q (%d nodes)",
				i, g.Name, len(g.Nodes), batch[i].Name, len(batch[i].Nodes))
		}
	}
	if _, ok := s.Next(); ok {
		t.Fatal("exhausted stream yielded another loop")
	}
}

// TestStratumLoopsMatchStreamSubsequence pins per-stratum standalone
// generation byte-identical to the stream's subsequence for that
// stratum — the property that makes multi-worker stratum generation
// reproduce the streamed corpus.
func TestStratumLoopsMatchStreamSubsequence(t *testing.T) {
	m := machines.Cydra5()
	st := DefaultStrata(300)
	batch, err := GenerateStrata(m, st)
	if err != nil {
		t.Fatal(err)
	}
	counts := st.Counts()
	if len(counts) != len(st.Strata) {
		t.Fatalf("Counts returned %d entries for %d strata", len(counts), len(st.Strata))
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != st.Loops {
		t.Fatalf("Counts sums to %d, want %d", total, st.Loops)
	}
	// Partition the streamed sequence by stratum name prefix.
	byName := map[string][]*ddg.Graph{}
	for _, g := range batch {
		name := g.Name[:len(g.Name)-7] // strip ".NNNNNN"
		byName[name] = append(byName[name], g)
	}
	for si, sp := range st.Strata {
		loops, err := StratumLoops(m, st, si)
		if err != nil {
			t.Fatal(err)
		}
		if len(loops) != counts[si] {
			t.Fatalf("stratum %s: StratumLoops returned %d loops, Counts says %d",
				sp.Name, len(loops), counts[si])
		}
		sub := byName[sp.Name]
		if len(sub) != len(loops) {
			t.Fatalf("stratum %s: stream yielded %d loops, standalone %d",
				sp.Name, len(sub), len(loops))
		}
		for k := range loops {
			if !sameGraph(loops[k], sub[k]) {
				t.Fatalf("stratum %s loop %d: standalone differs from stream", sp.Name, k)
			}
		}
	}
}

// TestStratumLoopsParallel generates every stratum concurrently (run
// under -race by make check) and checks the union reassembles the
// streamed corpus — the race-freedom half of the per-stratum rng
// satellite.
func TestStratumLoopsParallel(t *testing.T) {
	m := machines.Cydra5()
	st := DefaultStrata(240)
	results := make([][]*ddg.Graph, len(st.Strata))
	var wg sync.WaitGroup
	for si := range st.Strata {
		wg.Add(1)
		go func(si int) {
			defer wg.Done()
			loops, err := StratumLoops(m, st, si)
			if err != nil {
				t.Errorf("stratum %d: %v", si, err)
				return
			}
			results[si] = loops
		}(si)
	}
	wg.Wait()
	s, err := NewStream(m, st)
	if err != nil {
		t.Fatal(err)
	}
	next := make([]int, len(st.Strata))
	for {
		g, ok := s.Next()
		if !ok {
			break
		}
		matched := false
		for si := range results {
			k := next[si]
			if k < len(results[si]) && sameGraph(g, results[si][k]) {
				next[si] = k + 1
				matched = true
				break
			}
		}
		if !matched {
			t.Fatalf("streamed loop %q not produced by any parallel stratum", g.Name)
		}
	}
	for si, k := range next {
		if k != len(results[si]) {
			t.Fatalf("stratum %d: %d loops unconsumed", si, len(results[si])-k)
		}
	}
}

// TestStreamFlatMemory streams a 100k-loop corpus, dropping each loop,
// and asserts the live heap stays bounded: the stream retains nothing,
// so a corpus 75x the paper's fits in flat memory. (Heap is sampled
// after forced GCs, measuring retention rather than allocator churn.)
func TestStreamFlatMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("100k-loop generation in -short mode")
	}
	m := machines.Cydra5()
	st := DefaultStrata(100_000)
	s, err := NewStream(m, st)
	if err != nil {
		t.Fatal(err)
	}
	const boundBytes = 64 << 20
	nodes := 0
	for i := 0; ; i++ {
		g, ok := s.Next()
		if !ok {
			if i != st.Loops {
				t.Fatalf("stream ended after %d loops, want %d", i, st.Loops)
			}
			break
		}
		nodes += len(g.Nodes)
		if i%25000 == 24999 {
			runtime.GC()
			var ms runtime.MemStats
			runtime.ReadMemStats(&ms)
			if ms.HeapAlloc > boundBytes {
				t.Fatalf("after %d loops: %d bytes live, bound %d", i+1, ms.HeapAlloc, boundBytes)
			}
		}
	}
	if nodes < 4*st.Loops {
		t.Fatalf("corpus suspiciously small: %d ops over %d loops", nodes, st.Loops)
	}
}

// TestStrataValidation covers the configuration error paths.
func TestStrataValidation(t *testing.T) {
	m := machines.Cydra5()
	base := DefaultStrata(10)
	cases := []struct {
		name   string
		mutate func(*Strata)
	}{
		{"no-strata", func(s *Strata) { s.Strata = nil }},
		{"negative-loops", func(s *Strata) { s.Loops = -1 }},
		{"zero-weight", func(s *Strata) { s.Strata[0].Weight = 0 }},
		{"min-ops", func(s *Strata) { s.Strata[0].MinOps = 1 }},
		{"max-lt-min", func(s *Strata) { s.Strata[0].MaxOps = s.Strata[0].MinOps - 1 }},
		{"mem-den", func(s *Strata) { s.Strata[0].MemDen = 0 }},
	}
	for _, c := range cases {
		st := DefaultStrata(10)
		c.mutate(&st)
		if _, err := NewStream(m, st); err == nil {
			t.Errorf("%s: NewStream accepted invalid config", c.name)
		}
	}
	if _, err := StratumLoops(m, base, len(base.Strata)); err == nil {
		t.Error("StratumLoops accepted out-of-range stratum index")
	}
	if _, err := NewStream(machines.MIPS(), base); err == nil {
		t.Error("NewStream accepted a machine without the benchmark ops")
	}
}
