package loopgen

import (
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/machines"
)

// TestFastSourceMatchesMathRand pins fastSource draw-for-draw against
// math/rand's default source across seeds covering the normalization
// edge cases (0, negatives, multiples of 2^31-1, extremes) and real
// per-loop stream seeds, including mid-stream reseeding.
func TestFastSourceMatchesMathRand(t *testing.T) {
	seeds := []int64{
		0, 1, -1, 2, 19960521, 89482311,
		1<<31 - 1, -(1<<31 - 1), 2 * (1<<31 - 1), 1 << 31, 1<<63 - 1, -1 << 63,
	}
	st := DefaultStrata(1000)
	for si := range st.Strata {
		for k := 0; k < 3; k++ {
			seeds = append(seeds, st.loopSeed(si, k))
		}
	}
	fast := new(fastSource)
	for _, seed := range seeds {
		ref := rand.NewSource(seed).(rand.Source64)
		fast.Seed(seed)
		for i := 0; i < 700; i++ { // past one full 607-word register cycle
			if g, w := fast.Uint64(), ref.Uint64(); g != w {
				t.Fatalf("seed %d draw %d: fastSource=%#x mathrand=%#x", seed, i, g, w)
			}
			if g, w := fast.Int63(), ref.Int63(); g != w {
				t.Fatalf("seed %d draw %d: Int63 fastSource=%#x mathrand=%#x", seed, i, g, w)
			}
		}
	}
}

// TestFastRandMatchesMathRandAdapter drives both sources through
// *rand.Rand with the mixed call pattern the generators use (normal and
// uniform variates, bounded ints, permutations) and checks the derived
// streams agree — the adapter layer (ziggurat, rejection sampling) is
// shared, so source equality must carry through every derived draw.
func TestFastRandMatchesMathRandAdapter(t *testing.T) {
	for _, seed := range []int64{0, 1, 42, 19960521, -7} {
		got := newFastRand(seed)
		want := rand.New(rand.NewSource(seed))
		for i := 0; i < 200; i++ {
			if g, w := got.NormFloat64(), want.NormFloat64(); g != w {
				t.Fatalf("seed %d step %d: NormFloat64 %v != %v", seed, i, g, w)
			}
			if g, w := got.Intn(97), want.Intn(97); g != w {
				t.Fatalf("seed %d step %d: Intn %d != %d", seed, i, g, w)
			}
			if g, w := got.Float64(), want.Float64(); g != w {
				t.Fatalf("seed %d step %d: Float64 %v != %v", seed, i, g, w)
			}
			if g, w := got.Perm(13), want.Perm(13); !reflect.DeepEqual(g, w) {
				t.Fatalf("seed %d step %d: Perm %v != %v", seed, i, g, w)
			}
		}
	}
}

// TestFastRandStreamLoopsIdentical regenerates a slice of the stratified
// corpus with genStratumLoop over both sources and requires structurally
// identical graphs — the end-to-end pin that swapping the stream's
// source cannot move a single corpus byte (OPTGAP.md and the backend
// differential corpus tests gate the same property at full scale).
func TestFastRandStreamLoopsIdentical(t *testing.T) {
	o, err := resolve(machines.Cydra5())
	if err != nil {
		t.Fatal(err)
	}
	st := DefaultStrata(300)
	fast, ref := newFastRand(0), rand.New(rand.NewSource(0))
	for si := range st.Strata {
		for k := 0; k < 5; k++ {
			g := genStratumLoop(fast, o, &st, si, k)
			w := genStratumLoop(ref, o, &st, si, k)
			if !reflect.DeepEqual(g, w) {
				t.Fatalf("stratum %d loop %d: graphs differ", si, k)
			}
		}
	}
}

func BenchmarkSeedFastSource(b *testing.B) {
	s := new(fastSource)
	for i := 0; i < b.N; i++ {
		s.Seed(int64(i))
	}
}

func BenchmarkSeedMathRand(b *testing.B) {
	s := rand.NewSource(0)
	for i := 0; i < b.N; i++ {
		s.Seed(int64(i))
	}
}
