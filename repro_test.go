package repro_test

import (
	"strings"
	"testing"

	"repro"
)

const exampleSrc = `
machine example
resources r0 r1 r2 r3 r4
op A latency 3 {
  r0: 0
  r1: 1
  r2: 2
}
op B latency 8 {
  r1: 0
  r2: 1
  r3: 2-5
  r4: 6 7
}
`

func TestPublicAPIEndToEnd(t *testing.T) {
	m, err := repro.ParseMachine(exampleSrc)
	if err != nil {
		t.Fatal(err)
	}
	red, err := repro.Reduce(m, repro.Objective{Kind: repro.ResUses})
	if err != nil {
		t.Fatal(err)
	}
	if red.NumResources() != 2 {
		t.Fatalf("reduced resources = %d, want 2 (Figure 1)", red.NumResources())
	}
	mod := repro.NewDiscreteModule(red.Reduced, 0)
	a, b := red.Reduced.OpIndex("A"), red.Reduced.OpIndex("B")
	if !mod.Check(a, 0) {
		t.Fatal("empty table rejects A@0")
	}
	mod.Assign(a, 0, 1)
	if mod.Check(b, 1) {
		t.Fatal("B one cycle after A must conflict")
	}
	if !mod.Check(b, 2) {
		t.Fatal("B two cycles after A must be free")
	}
}

func TestPublicAPIBuilder(t *testing.T) {
	b := repro.NewMachine("mini")
	b.Resources("alu", "wb")
	b.Op("add", 1).Use("alu", 0).Use("wb", 1)
	m := b.Build()
	out := repro.PrintMachine(m)
	if !strings.Contains(out, "op add") {
		t.Fatalf("PrintMachine output: %s", out)
	}
	m2, err := repro.ParseMachine(out)
	if err != nil {
		t.Fatal(err)
	}
	if m2.Ops[0].Name != "add" {
		t.Fatal("round trip lost op")
	}
}

func TestPublicAPIBuiltins(t *testing.T) {
	for _, name := range repro.BuiltinMachines() {
		if repro.BuiltinMachine(name) == nil {
			t.Errorf("BuiltinMachine(%q) = nil", name)
		}
	}
	if repro.BuiltinMachine("bogus") != nil {
		t.Error("bogus machine found")
	}
}

func TestPublicAPIReduceErrors(t *testing.T) {
	m := repro.BuiltinMachine("example")
	if _, err := repro.Reduce(m, repro.Objective{Kind: repro.KCycleWord, K: 0}); err == nil {
		t.Error("invalid objective accepted")
	}
	bad := m.Clone()
	bad.Ops[0].Latency = -1
	if _, err := repro.Reduce(bad, repro.Objective{Kind: repro.ResUses}); err == nil {
		t.Error("invalid machine accepted")
	}
}

func TestPublicAPIModuloScheduling(t *testing.T) {
	m := repro.BuiltinMachine("cydra5")
	src := `
loop saxpy
node addr aadd
node ldx  ld.w
node ldy  ld.w
node mul  fmul.s
node sum  fadd.s
node sta  aadd
node st   st.w
node br   brtop
edge addr addr delay 2 dist 1
edge addr ldx delay 2
edge addr ldy delay 2
edge ldx mul delay 22
edge mul sum delay 7
edge ldy sum delay 22
edge sta sta delay 2 dist 1
edge sta st delay 2
edge sum st delay 6
edge sum br delay 1
`
	g, err := repro.ParseLoop(src, m)
	if err != nil {
		t.Fatal(err)
	}
	mii := repro.MII(g, m)
	if mii < 1 {
		t.Fatalf("MII = %d", mii)
	}
	red, err := repro.Reduce(m, repro.Objective{Kind: repro.KCycleWord, K: 3})
	if err != nil {
		t.Fatal(err)
	}
	k := repro.MaxCyclesPerWord(len(red.Reduced.Resources), 64)
	r := repro.ModuloScheduleLoop(g, m, repro.BitvectorFactory(red.Reduced, k, 64), repro.DefaultSchedConfig())
	if !r.OK {
		t.Fatal("scheduling failed")
	}
	if err := repro.VerifyModuloSchedule(g, m.Expand(), r); err != nil {
		t.Fatalf("schedule invalid against ORIGINAL description: %v", err)
	}
	if r.II < mii {
		t.Fatalf("II %d < MII %d", r.II, mii)
	}
	if out := repro.PrintLoop(g, m); !strings.Contains(out, "node mul fmul.s") {
		t.Errorf("PrintLoop output: %s", out)
	}
}

func TestPublicAPIBenchmarkAndAutomaton(t *testing.T) {
	m := repro.BuiltinMachine("cydra5")
	loops, err := repro.BenchmarkLoops(m)
	if err != nil {
		t.Fatal(err)
	}
	if len(loops) != 1327 {
		t.Fatalf("loops = %d", len(loops))
	}
	ex := repro.BuiltinMachine("example").Expand()
	a, err := repro.BuildForwardAutomaton(ex, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumStates() < 3 {
		t.Fatalf("states = %d", a.NumStates())
	}
}

func TestPublicAPIKernelAndFactories(t *testing.T) {
	m := repro.BuiltinMachine("cydra5")
	g, err := repro.ParseLoop(`
loop k
node a aadd
node l ld.w
node f fadd.s
node b brtop
edge a a delay 2 dist 1
edge a l delay 2
edge l f delay 22
edge f b delay 1
`, m)
	if err != nil {
		t.Fatal(err)
	}
	e := m.Expand()
	// Bitvector module through the facade.
	k := repro.MaxCyclesPerWord(len(e.Resources), 64)
	if k < 1 {
		k = 1
	}
	if _, err := repro.NewBitvectorModule(e, k, 64, 0); err != nil {
		t.Fatal(err)
	}
	r := repro.ModuloScheduleLoop(g, m, repro.DiscreteFactory(e), repro.DefaultSchedConfig())
	if !r.OK {
		t.Fatal("schedule failed")
	}
	kern, err := repro.BuildKernel(g, r)
	if err != nil {
		t.Fatal(err)
	}
	if kern.II != r.II || kern.Stages < 2 {
		t.Fatalf("kernel II=%d stages=%d", kern.II, kern.Stages)
	}
	if err := repro.ValidateOverlap(g, e, r, 6); err != nil {
		t.Fatalf("ValidateOverlap: %v", err)
	}
}
