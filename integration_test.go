package repro_test

import (
	"testing"

	"repro"
	"repro/internal/query"
)

// TestIntegrationCrossBlockScheduling drives the full cross-basic-block
// flow through the public API: schedule block A, extract its dangling
// resource requirements, seed block B's module with them, schedule B, and
// validate the concatenation against the ORIGINAL (unreduced) machine —
// while B's module runs on the REDUCED description.
func TestIntegrationCrossBlockScheduling(t *testing.T) {
	m := repro.BuiltinMachine("mips")
	e := m.Expand()
	red, err := repro.Reduce(m, repro.Objective{Kind: repro.ResUses})
	if err != nil {
		t.Fatal(err)
	}
	span := func(op int) int { return red.Reduced.Ops[op].Table.Span() }

	// Block A on the reduced description.
	blockA := repro.NewDiscreteModule(red.Reduced, 0).(*query.Discrete)
	fdiv := red.Reduced.OpIndex("fdiv.d")
	ialu := red.Reduced.OpIndex("ialu")
	if fdiv < 0 || ialu < 0 {
		t.Fatal("ops missing")
	}
	blockA.Assign(ialu, 0, 1)
	blockA.Assign(fdiv, 1, 2)
	exit := 3

	ds := repro.DanglingFrom(blockA.Instances(), span, exit)
	if len(ds) == 0 {
		t.Fatal("no dangling requirements extracted")
	}

	// Block B, seeded.
	blockB := repro.NewDiscreteModule(red.Reduced, 0).(repro.DanglingSeeder)
	if err := blockB.SeedDangling(ds); err != nil {
		t.Fatal(err)
	}
	bStart := -1
	for cyc := 0; cyc < 64; cyc++ {
		if blockB.Check(fdiv, cyc) {
			blockB.Assign(fdiv, cyc, 10)
			bStart = cyc
			break
		}
	}
	if bStart < 0 {
		t.Fatal("no slot for the second divide in block B")
	}

	// Ground truth: replay the concatenated trace on the ORIGINAL
	// description — the reduced description must have answered every
	// boundary query identically.
	concat := repro.NewDiscreteModule(e, 0)
	ofdiv, oialu := e.OpIndex("fdiv.d"), e.OpIndex("ialu")
	for _, pl := range []struct{ op, cyc, id int }{
		{oialu, 0, 1}, {ofdiv, 1, 2}, {ofdiv, exit + bStart, 10},
	} {
		if !concat.Check(pl.op, pl.cyc) {
			t.Fatalf("concatenated trace has contention at cycle %d", pl.cyc)
		}
		concat.Assign(pl.op, pl.cyc, pl.id)
	}
	// And the slot must be tight: one cycle earlier conflicts.
	if bStart > 0 {
		if concat.Check(ofdiv, exit+bStart-1) {
			t.Fatalf("block B missed an earlier feasible slot at %d", bStart-1)
		}
	}
}

// TestIntegrationUnrestrictedBackends: the operation-driven scheduler
// produces identical schedules through the reduced reservation tables and
// the automaton pair, via the public API.
func TestIntegrationUnrestrictedBackends(t *testing.T) {
	m := repro.BuiltinMachine("example")
	e := m.Expand()
	red, err := repro.Reduce(m, repro.Objective{Kind: repro.ResUses})
	if err != nil {
		t.Fatal(err)
	}
	g := &repro.Loop{
		Name: "bb",
		Nodes: []repro.LoopNode{
			{Name: "b1", Op: m.OpIndex("B")},
			{Name: "b2", Op: m.OpIndex("B")},
			{Name: "a1", Op: m.OpIndex("A")},
		},
		Edges: []repro.LoopEdge{{From: 0, To: 2, Delay: 8}},
	}
	tablesMod := repro.NewDiscreteModule(red.Reduced, 0)
	rt, err := repro.OperationDrivenSchedule(g, e, tablesMod)
	if err != nil {
		t.Fatal(err)
	}
	pair, err := repro.NewPairModule(red.Reduced, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	rp, err := repro.OperationDrivenSchedule(g, e, pair)
	if err != nil {
		t.Fatal(err)
	}
	for v := range rt.Time {
		if rt.Time[v] != rp.Time[v] {
			t.Fatalf("node %d: tables %d vs pair %d", v, rt.Time[v], rp.Time[v])
		}
	}
}

// TestIntegrationRegionFacade drives the CFG region scheduler through the
// public API on the Alpha: an if-then-else hammock whose entry issues a
// long divide.
func TestIntegrationRegionFacade(t *testing.T) {
	m := repro.BuiltinMachine("alpha")
	red, err := repro.Reduce(m, repro.Objective{Kind: repro.ResUses})
	if err != nil {
		t.Fatal(err)
	}
	mk := func(name string, ops ...string) repro.RegionBlock {
		g := &repro.Loop{Name: name}
		for _, op := range ops {
			idx := m.OpIndex(op)
			if idx < 0 {
				t.Fatalf("missing op %s", op)
			}
			g.Nodes = append(g.Nodes, repro.LoopNode{Name: name + "." + op, Op: idx})
		}
		return repro.RegionBlock{Name: name, Body: g}
	}
	entry := mk("entry", "fdiv.d", "ibr")
	then := mk("then", "fadd", "store")
	els := mk("else", "fdiv.s")
	join := mk("join", "fdiv.d", "iadd")
	entry.Succs = []int{1, 2}
	then.Succs = []int{3}
	els.Succs = []int{3}
	region := &repro.Region{Name: "hammock", Blocks: []repro.RegionBlock{entry, then, els, join}}

	s, err := repro.ScheduleRegion(region, red.Reduced)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range region.Paths(4) {
		// Strongest form: replay on the ORIGINAL description.
		if err := repro.ReplayRegionPath(region, m.Expand(), s, p); err != nil {
			t.Fatalf("path %v: %v", p, err)
		}
	}
	// The join block's divide must be delayed by the dangling divider.
	if s.Time[3][0] < 5 {
		t.Errorf("join divide at %d, want pushed well past entry's dangling divider", s.Time[3][0])
	}
}
