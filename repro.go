// Package repro is a reproduction of Eichenberger & Davidson, "A Reduced
// Multipipeline Machine Description that Preserves Scheduling Constraints"
// (PLDI 1996): automated, error-free reduction of reservation-table
// machine descriptions that exactly preserves every scheduling constraint,
// plus the contention query module and schedulers of the paper's
// evaluation.
//
// # Quick start
//
//	m, err := repro.ParseMachine(src)          // or repro.BuiltinMachine("cydra5")
//	red, err := repro.Reduce(m, repro.Objective{Kind: repro.KCycleWord, K: 4})
//	mod, err := repro.NewBitvectorModule(red.Reduced, 4, 64, 0)
//	if mod.Check(op, cycle) { mod.Assign(op, cycle, id) }
//
// The reduced description answers every contention query exactly as the
// original does — Reduce verifies this by reconstructing the
// forbidden-latency matrix — while being several times faster to query
// and smaller to store.
//
// The package is a facade over the implementation packages:
//
//	internal/resmodel   machine model (resources, reservation tables, alternatives)
//	internal/mdl        textual machine-description language
//	internal/forbidden  forbidden-latency matrices and operation classes
//	internal/core       the reduction (Algorithm 1 + cover selection)
//	internal/query      contention query module (discrete/bitvector, linear/modulo)
//	internal/automaton  finite-state-automaton baseline
//	internal/ddg        loop dependence graphs and MII
//	internal/loopgen    synthetic loop benchmark
//	internal/sched      iterative modulo scheduler and list scheduler
//	internal/tables     regeneration of the paper's tables and figures
package repro

import (
	"fmt"

	"repro/internal/automaton"
	"repro/internal/cfg"
	"repro/internal/core"
	"repro/internal/ddg"
	"repro/internal/loopgen"
	"repro/internal/machines"
	"repro/internal/mdl"
	"repro/internal/query"
	"repro/internal/resmodel"
	"repro/internal/sched"
)

// Machine model types.
type (
	// Machine is a machine description: named resources plus operations
	// with (possibly alternative) reservation tables.
	Machine = resmodel.Machine
	// Operation is one machine operation.
	Operation = resmodel.Operation
	// Table is a reservation table.
	Table = resmodel.Table
	// Usage is a single reservation-table entry.
	Usage = resmodel.Usage
	// Expanded is a machine with alternative usages expanded into
	// alternative operations (Section 3 of the paper).
	Expanded = resmodel.Expanded
	// MachineBuilder assembles machines programmatically.
	MachineBuilder = resmodel.Builder
)

// Reduction types.
type (
	// Objective selects what the reduction minimizes: ResUses for the
	// discrete representation or KCycleWord for packed bitvectors.
	Objective = core.Objective
	// Reduction is a completed, verified machine-description reduction.
	Reduction = core.Result
)

// Objective kinds.
const (
	// ResUses minimizes resource usages (discrete representation).
	ResUses = core.ResUses
	// KCycleWord minimizes non-empty K-cycle words (bitvector
	// representation).
	KCycleWord = core.KCycleWord
)

// Scheduling types.
type (
	// Module is the contention query interface (check / assign /
	// assign&free / free / check-with-alt).
	Module = query.Module
	// QueryCounters is the work-unit accounting of a module.
	QueryCounters = query.Counters
	// Loop is a loop-body dependence graph.
	Loop = ddg.Graph
	// LoopNode is one operation of a loop body.
	LoopNode = ddg.Node
	// LoopEdge is a dependence with latency and iteration distance.
	LoopEdge = ddg.Edge
	// ModuloSchedule is the result of modulo scheduling one loop.
	ModuloSchedule = sched.Result
	// SchedConfig configures the Iterative Modulo Scheduler.
	SchedConfig = sched.Config
	// ModuleFactory builds a query module for a given initiation interval.
	ModuleFactory = sched.ModuleFactory
	// Automaton is the finite-state-automaton baseline.
	Automaton = automaton.Automaton
	// Dangling is a resource requirement dangling into a basic block from
	// a predecessor (Section 1's boundary conditions).
	Dangling = query.Dangling
	// DanglingSeeder is implemented by reserved-table modules that accept
	// boundary conditions (the discrete and bitvector modules; the
	// automaton pair cannot without extra states).
	DanglingSeeder = query.DanglingSeeder
	// Region is an acyclic control-flow graph of basic blocks scheduled
	// across block boundaries with dangling resource requirements.
	Region = cfg.Graph
	// RegionBlock is one basic block of a Region.
	RegionBlock = cfg.Block
	// RegionXEdge is a cross-block data dependence.
	RegionXEdge = cfg.XEdge
	// RegionSchedule is the per-block schedule of a Region.
	RegionSchedule = cfg.Schedule
)

// NewMachine returns a builder for authoring a machine programmatically.
func NewMachine(name string) *MachineBuilder { return resmodel.NewBuilder(name) }

// ParseMachine parses a textual machine description (see internal/mdl for
// the grammar) and validates it.
func ParseMachine(src string) (*Machine, error) { return mdl.Parse(src) }

// PrintMachine renders a machine in the textual description language;
// ParseMachine(PrintMachine(m)) is equivalent to m.
func PrintMachine(m *Machine) string { return mdl.Print(m) }

// BuiltinMachine returns one of the paper's machines: "example" (Figure 1),
// "mips" (R3000/R3010), "alpha" (21064), "cydra5", or "cydra5-subset".
// It returns nil for unknown names; BuiltinMachines lists valid names.
func BuiltinMachine(name string) *Machine { return machines.ByName(name) }

// BuiltinMachines lists the names accepted by BuiltinMachine.
func BuiltinMachines() []string { return machines.Names() }

// Reduce runs the paper's three-step reduction on the machine and verifies
// that the result preserves the forbidden-latency matrix exactly.
//
// Reductions are memoized in a process-wide content-keyed cache: reducing
// the same machine (by canonicalized content, not name) under the same
// objective again returns the already-verified Result without recomputing
// either the reduction or its verification.
func Reduce(m *Machine, obj Objective) (*Reduction, error) {
	return ReduceParallel(m, obj, 1)
}

// ReduceParallel is Reduce with the reduction pipeline's independent
// inner work (forbidden-matrix rows, pair-compatibility scans) fanned
// across a worker pool of the given size; workers < 1 selects GOMAXPROCS
// and workers == 1 is the serial reference path. The Result is identical
// at every worker count.
func ReduceParallel(m *Machine, obj Objective, workers int) (*Reduction, error) {
	if err := obj.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	res := core.CachedReduceParallel(m.Expand(), obj, workers)
	if err := res.Verify(); err != nil {
		return nil, fmt.Errorf("repro: internal error: %w", err)
	}
	return res, nil
}

// NewDiscreteModule creates a discrete-representation contention query
// module over the (original or reduced) expanded description; ii > 0
// selects a Modulo Reservation Table with ii columns.
func NewDiscreteModule(e *Expanded, ii int) Module { return query.NewDiscrete(e, ii) }

// NewBitvectorModule creates a bitvector-representation module packing k
// cycle-bitvectors per word of wordBits (32 or 64) bits.
func NewBitvectorModule(e *Expanded, k, wordBits, ii int) (Module, error) {
	return query.NewBitvector(e, k, wordBits, ii)
}

// MaxCyclesPerWord returns the densest legal bitvector packing for a
// description with the given resource count.
func MaxCyclesPerWord(numResources, wordBits int) int {
	return query.MaxCyclesPerWord(numResources, wordBits)
}

// ParseLoop parses a loop dependence graph in the textual format of
// internal/ddg, resolving operation names against the machine.
func ParseLoop(src string, m *Machine) (*Loop, error) { return ddg.Parse(src, m) }

// PrintLoop renders a loop in the format accepted by ParseLoop.
func PrintLoop(g *Loop, m *Machine) string { return ddg.Print(g, m) }

// MII returns the minimum initiation interval of the loop on the machine
// (the maximum of its resource-constrained and recurrence-constrained
// bounds).
func MII(g *Loop, m *Machine) int { return g.MII(ddg.MachineUsage{M: m}) }

// ModuloScheduleLoop software-pipelines the loop with Rau's Iterative
// Modulo Scheduler, issuing contention queries through modules built by
// factory (use DiscreteFactory or BitvectorFactory).
func ModuloScheduleLoop(g *Loop, m *Machine, factory ModuleFactory, cfg SchedConfig) ModuloSchedule {
	return sched.Schedule(g, m, factory, cfg)
}

// VerifyModuloSchedule checks a schedule against the loop's dependences
// and the given description's resources.
func VerifyModuloSchedule(g *Loop, e *Expanded, r ModuloSchedule) error {
	return sched.VerifySchedule(g, e, r)
}

// DefaultSchedConfig returns the paper's scheduler configuration
// (decision budget 6N).
func DefaultSchedConfig() SchedConfig { return sched.DefaultConfig() }

// DiscreteFactory builds Modulo Reservation Table modules over e.
func DiscreteFactory(e *Expanded) ModuleFactory {
	return func(ii int) Module { return query.NewDiscrete(e, ii) }
}

// BitvectorFactory builds bitvector Modulo Reservation Table modules over
// e with the given packing.
func BitvectorFactory(e *Expanded, k, wordBits int) ModuleFactory {
	return func(ii int) Module {
		mod, err := query.NewBitvector(e, k, wordBits, ii)
		if err != nil {
			panic(err)
		}
		return mod
	}
}

// BenchmarkLoops generates the deterministic synthetic stand-in for the
// paper's 1327-loop benchmark (requires a Cydra-5-like machine providing
// the benchmark operations).
func BenchmarkLoops(m *Machine) ([]*Loop, error) {
	return loopgen.Generate(m, loopgen.Default())
}

// BuildForwardAutomaton constructs the Proebsting-Fraser-style forward
// automaton for the description (the paper's Section 2 comparator), with
// a state-count safety limit.
func BuildForwardAutomaton(e *Expanded, maxStates int) (*Automaton, error) {
	return automaton.BuildForward(e, automaton.Limit{MaxStates: maxStates})
}

// NewPairModule builds the forward/reverse automaton pair supporting the
// unrestricted scheduling model — the Section 2 comparator whose
// per-cycle state storage and insertion propagation the paper's reduced
// reservation tables avoid.
func NewPairModule(e *Expanded, maxStates int) (Module, error) {
	return automaton.NewPairModule(e, automaton.Limit{MaxStates: maxStates})
}

// DanglingFrom extracts the requirements a scheduled block leaves
// dangling past its exit cycle, re-anchored to the successor block's
// entry; instances come from a module's Instances method and span maps an
// expanded op to its reservation-table span.
func DanglingFrom(instances map[int]struct{ Op, Cycle int }, span func(op int) int, exit int) []Dangling {
	return query.DanglingFrom(instances, span, exit)
}

// BuildKernel folds a successful modulo schedule into its steady-state
// kernel (II rows, stage-tagged operations) with prologue/epilogue
// accounting.
func BuildKernel(g *Loop, r ModuloSchedule) (*sched.Kernel, error) {
	return sched.BuildKernel(g, r)
}

// ValidateOverlap replays several overlapped iterations of a modulo
// schedule on a fresh linear reserved table over the given description
// and verifies they are contention- and dependence-free — the end-to-end
// proof that the pipelined steady state is correct beyond the MRT
// abstraction.
func ValidateOverlap(g *Loop, e *Expanded, r ModuloSchedule, iters int) error {
	return sched.ValidateOverlap(g, e, r, iters, func() interface {
		Check(op, cycle int) bool
		Assign(op, cycle, id int)
	} {
		return query.NewDiscrete(e, 0)
	})
}

// ScheduleRegion schedules every basic block of an acyclic control-flow
// region, seeding each block's reserved table with the union of its
// predecessors' dangling resource requirements (Section 1's boundary
// conditions). The result is valid along every control path.
func ScheduleRegion(g *Region, e *Expanded) (*RegionSchedule, error) {
	return cfg.ScheduleRegion(g, e)
}

// ReplayRegionPath validates a region schedule along one control path by
// concatenating its blocks on a single reserved table over the given
// description.
func ReplayRegionPath(g *Region, e *Expanded, s *RegionSchedule, path []int) error {
	return cfg.ReplayPath(g, e, s, path)
}

// OperationDrivenSchedule schedules an acyclic dependence graph in
// operation (priority) order with arbitrary-cycle insertion — the
// unrestricted placement pattern of the Cydra 5 compiler's scalar
// scheduler. Any Module backend works.
func OperationDrivenSchedule(g *Loop, e *Expanded, mod Module) (sched.ListResult, error) {
	return sched.OperationDriven(g, e, mod)
}
