# Tier-1 checks and the parallel-layer benchmark report.
#
#   make            build + test
#   make verify     build + vet + test + race (everything CI runs)
#   make bench-json regenerate BENCH_parallel.json on this host

GO ?= go

.PHONY: all build test race vet bench bench-json verify clean

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The worker pools in internal/parallel, internal/forbidden, internal/core
# and internal/tables are only meaningfully exercised under -race.
race:
	$(GO) test -race ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Serial-vs-parallel wall time for the Table 5/6 harnesses, the reduction
# pipeline, and the reduction cache. Speedups are host-dependent; the
# report records GOMAXPROCS and NumCPU.
bench-json:
	$(GO) run ./cmd/paper -bench-json BENCH_parallel.json -loops 300

verify: build vet test race

clean:
	$(GO) clean ./...
