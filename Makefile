# Tier-1 checks and the parallel-layer benchmark report.
#
#   make             build + test
#   make check       build + vet + test + race + fuzz-smoke + serve-smoke
#                    (tier-1, everything CI runs)
#   make verify      alias for check
#   make fuzz-smoke  run each native fuzz target briefly (10s apiece)
#   make serve-smoke build mdserve and drive it end to end over TCP
#   make metrics     regenerate metrics.json + OPTGAP.md and sanity-check them
#   make bench-json  regenerate BENCH_parallel.json on this host
#   make bench-reduction  regenerate BENCH_reduction.json on this host
#   make bench-sched      regenerate BENCH_sched.json on this host
#   make bench-throughput regenerate BENCH_throughput.json on this host
#   make bench-serve      regenerate BENCH_serve.json on this host
#   make bench-opt        regenerate BENCH_opt.json on this host
#   make opt-gap          regenerate the OPTGAP.md optimality-gap report
#   make bench-repr       regenerate BENCH_repr.json on this host
#   make crossover        regenerate the CROSSOVER.md backend frontier
#   make profile          CPU+heap pprof profiles of the throughput run
#   make bench-compare    re-measure and gate against BENCH_reduction.json,
#                         BENCH_sched.json, BENCH_throughput.json,
#                         BENCH_serve.json, BENCH_opt.json and
#                         BENCH_repr.json

GO ?= go
FUZZTIME ?= 10s

.PHONY: all build test race vet bench bench-json bench-reduction bench-sched bench-throughput bench-serve bench-opt bench-repr crossover bench-compare bench-alloc metrics opt-gap profile fuzz-smoke serve-smoke check verify clean

all: build test

build:
	$(GO) build ./...

# -shuffle=on randomizes test execution order within each package, so
# accidental order dependencies between tests fail in CI instead of
# lurking.
test:
	$(GO) test -shuffle=on ./...

# The worker pools in internal/parallel, internal/forbidden, internal/core
# and internal/tables are only meaningfully exercised under -race.
race:
	$(GO) test -race -shuffle=on ./...

vet:
	$(GO) vet ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# The query hot-path benchmarks that pin the observability bargain
# (metrics disabled must stay at 0 allocs/op) plus the arena pins:
# module Reset and steady-state arena scheduling allocate nothing.
bench-alloc:
	$(GO) test -run '^$$' -bench 'BenchmarkCheck|BenchmarkAssign' -benchmem ./internal/query/
	$(GO) test -run '^TestResetDoesNotAllocate$$' -count=1 -v ./internal/query/
	$(GO) test -run '^TestArenaSteadyStateZeroAlloc$$' -count=1 -v ./internal/sched/

# A machine-readable profile of a representative evaluation run (Table 6
# exercises scheduling, reduction, the cache and the worker pool). The
# emitted JSON is structurally validated by cmd/paper itself; the loop
# below additionally checks that every expected scope contributed.
metrics:
	$(GO) run ./cmd/paper -table 6 -loops 120 -parallel 2 -metrics metrics.json > /dev/null
	@for s in query sched core parallel; do \
		grep -q "\"$$s\." metrics.json || { echo "metrics.json: missing scope $$s" >&2; exit 1; }; \
	done
	@echo "metrics.json OK"
	$(GO) run ./cmd/paper -opt-gap OPTGAP.md > /dev/null
	@git diff --quiet -- OPTGAP.md || { echo "OPTGAP.md: regeneration changed the committed report" >&2; exit 1; }
	@echo "OPTGAP.md OK"

# Serial-vs-parallel wall time for the Table 5/6 harnesses, the reduction
# pipeline, and the reduction cache. Speedups are host-dependent; the
# report records GOMAXPROCS and NumCPU.
bench-json:
	$(GO) run ./cmd/paper -bench-json BENCH_parallel.json -loops 300

# Per-stage reduction wall time (F-matrix, genset, prune, select, exact)
# over the Tables 1-4 workload. Commits the baseline bench-compare gates
# against; regenerate deliberately when the pipeline legitimately changes.
bench-reduction:
	$(GO) run ./cmd/paper -bench-reduction BENCH_reduction.json

# Scheduler slot-scan wall time: the full IMS loop corpus per Table 6
# representation, range-query scan (serial_ns, the gated column) vs the
# naive per-cycle scan (parallel_ns). Commits the baseline bench-compare
# gates against; regenerate deliberately when the scheduler or query
# layer legitimately changes.
bench-sched:
	$(GO) run ./cmd/paper -bench-sched BENCH_sched.json

# Streamed-corpus scheduler throughput: 100k stratified loops through
# per-worker arenas, per representation x worker count. The headline
# loops-per-second metric of the scheduling stack. Commits the baseline
# bench-compare gates against; entries record the host shape, and
# benchgate skips (not fails) entries measured under a different one.
bench-throughput:
	$(GO) run ./cmd/paper -bench-throughput BENCH_throughput.json

# mdserve load test: the full handler stack on a loopback listener,
# one-shot batches and stateful NDJSON session streams, at client
# counts 1 and 8. Records req/s and p50/p99 request latency; serial_ns
# (workload wall time) is the gated column. Commits the baseline
# bench-compare gates against; regenerate deliberately when the serving
# layer legitimately changes.
bench-serve:
	$(GO) run ./cmd/paper -bench-serve BENCH_serve.json -bench-workers 1,8

# Exact-scheduler wall time: the stratified opt-gap corpus through
# sched.Optimal at the default budget (serial_ns, the gated column) vs
# the plain IMS pass (parallel_ns), at workers 1 and 8. Commits the
# baseline bench-compare gates against; entries record the host shape,
# and benchgate skips (not fails) entries measured under a different one.
bench-opt:
	$(GO) run ./cmd/paper -bench-opt BENCH_opt.json -bench-workers 1,8

# The committed optimality-gap report: the stratified corpus scheduled by
# the exact searcher vs the IMS heuristic, per stratum. Fully
# deterministic (fixed corpus seed, deterministic schedulers), so
# regeneration on any host must reproduce the committed bytes.
opt-gap:
	$(GO) run ./cmd/paper -opt-gap OPTGAP.md

# Corpus scheduling wall time per query backend (acyclic PA-RISC blocks
# per fixed backend, Cydra 5 modulo loops per modulo-capable policy).
# serial_ns is the gated column. Commits the baseline bench-compare
# gates against; regenerate deliberately when the query layer
# legitimately changes.
bench-repr:
	$(GO) run ./cmd/paper -bench-repr BENCH_repr.json

# The committed representation-crossover frontier: query.Select's
# deterministic calibration over real machines and seeded random strata.
# No wall clock anywhere (counted probe work only), so regeneration on
# any host must reproduce the committed bytes.
crossover:
	$(GO) run ./cmd/paper -crossover CROSSOVER.md
	@git diff --quiet -- CROSSOVER.md || { echo "CROSSOVER.md: regeneration changed the committed report" >&2; exit 1; }
	@echo "CROSSOVER.md OK"

# pprof profiles of the scheduler-throughput hot path — the run the
# bit-parallel verdict scan was tuned against. Every -bench-* mode
# accepts the same flags; this target profiles the headline one.
# Inspect with `go tool pprof -top cpu.pprof` (or mem.pprof).
profile:
	$(GO) run ./cmd/paper -bench-throughput /tmp/BENCH_throughput.profile.json \
		-bench-workers 1 -cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "wrote cpu.pprof and mem.pprof; inspect with: go tool pprof -top cpu.pprof"

# Non-tier-1 perf smoke: re-measure the per-stage, scheduler and
# throughput reports and fail if anything regressed more than 20%
# against the committed baselines. Wall-time gating is inherently
# host-sensitive, which is why this stays out of `make check`. The
# throughput re-measurement covers workers 1 and 8 only (the scaling
# endpoints); the committed baseline keeps the full 1,2,4,8 sweep.
bench-compare:
	$(GO) run ./cmd/paper -bench-reduction /tmp/BENCH_reduction.current.json
	$(GO) run ./cmd/benchgate -baseline BENCH_reduction.json -current /tmp/BENCH_reduction.current.json
	$(GO) run ./cmd/paper -bench-sched /tmp/BENCH_sched.current.json
	$(GO) run ./cmd/benchgate -baseline BENCH_sched.json -current /tmp/BENCH_sched.current.json
	$(GO) run ./cmd/paper -bench-throughput /tmp/BENCH_throughput.current.json -bench-workers 1,8
	$(GO) run ./cmd/benchgate -baseline BENCH_throughput.json -current /tmp/BENCH_throughput.current.json -entries '-w[18]$$'
	$(GO) run ./cmd/paper -bench-serve /tmp/BENCH_serve.current.json -bench-workers 1,8
	$(GO) run ./cmd/benchgate -baseline BENCH_serve.json -current /tmp/BENCH_serve.current.json
	$(GO) run ./cmd/paper -bench-opt /tmp/BENCH_opt.current.json -bench-workers 1,8
	$(GO) run ./cmd/benchgate -baseline BENCH_opt.json -current /tmp/BENCH_opt.current.json
	$(GO) run ./cmd/paper -bench-repr /tmp/BENCH_repr.current.json
	$(GO) run ./cmd/benchgate -baseline BENCH_repr.json -current /tmp/BENCH_repr.current.json

# Brief runs of the native fuzz targets. FuzzReducePreservesF fuzzes the
# paper's theorem (reduction preserves the forbidden-latency matrix);
# FuzzServeBatchDecode pins that no bytes on the wire can panic or 5xx
# the batch endpoint. Kept out of `make test` so `go test ./...` stays
# fast; corpus regressions in testdata/ still run there.
fuzz-smoke:
	$(GO) test -run '^$$' -fuzz '^FuzzReducePreservesF$$' -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -run '^$$' -fuzz '^FuzzParseObjective$$' -fuzztime $(FUZZTIME) ./internal/core/
	$(GO) test -run '^$$' -fuzz '^FuzzServeBatchDecode$$' -fuzztime $(FUZZTIME) ./internal/serve/
	$(GO) test -run '^$$' -fuzz '^FuzzServeSessionStream$$' -fuzztime $(FUZZTIME) ./internal/serve/
	$(GO) test -run '^$$' -fuzz '^FuzzOptimalNeverInvalid$$' -fuzztime $(FUZZTIME) ./internal/sched/
	$(GO) test -run '^$$' -fuzz '^FuzzParse$$' -fuzztime $(FUZZTIME) ./internal/mdl/

# End-to-end daemon smoke: build cmd/mdserve, boot it on an ephemeral
# port, run one reduce + one batch + a metrics scrape over real TCP, then
# SIGTERM and require a clean drain. Build-tagged so plain `go test`
# skips it.
serve-smoke:
	$(GO) test -tags smoke -run '^TestServeSmoke$$' -count=1 ./internal/serve/

check: build vet test race fuzz-smoke serve-smoke

verify: check

clean:
	$(GO) clean ./...
